"""Executor crash-restart: lineage, task safepoints, adoption, retries."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.clock import Bucket
from repro.config import GovernorConfig
from repro.errors import RetryExhausted, SimulatedCrash
from repro.faults.plan import FaultConfig
from repro.frameworks.spark import (
    CachePolicy,
    JobRetryPolicy,
    SparkConf,
    SparkContext,
    run_job,
)
from repro.heap.object_model import SpaceId
from repro.units import KiB


def make_ctx(fault=None, partitions=4):
    vm = JavaVM(
        VMConfig(
            heap_size=gb(8),
            teraheap=TeraHeapConfig(
                enabled=True,
                h2_size=gb(64),
                region_size=64 * KiB,
                promotion_buffer_size=32 * KiB,
                writeback_policy="commit",
            ),
            page_cache_size=gb(8),
            faults=fault,
            governor=GovernorConfig(),
            audit="full",
        )
    )
    conf = SparkConf(
        cache_policy=CachePolicy.TERAHEAP, num_partitions=partitions
    )
    return SparkContext(vm, conf)


def build_chain(ctx, persist_mid=True, persist_top=False):
    src = ctx.range_rdd(gb(1), compute_ops_per_chunk=100, name="src")
    mid = src.map(ops_per_chunk=1000, name="mid")
    top = mid.map(ops_per_chunk=100, name="top")
    if persist_mid:
        mid.persist()
    if persist_top:
        top.persist()
    return src, mid, top


def crash_free_value(persist_mid=True, persist_top=False, partitions=4):
    ctx = make_ctx(partitions=partitions)
    _, _, top = build_chain(ctx, persist_mid, persist_top)
    total = top.evaluate()
    ctx.vm.major_gc()
    return total + top.evaluate()


class TestLineage:
    def test_source_and_map_records(self):
        ctx = make_ctx()
        src, mid, top = build_chain(ctx)
        assert src.lineage.op == "source"
        assert src.lineage.parent_id is None
        assert mid.lineage.op == "map"
        assert mid.lineage.parent_id == src.rdd_id
        assert top.lineage.parent_id == mid.rdd_id

    def test_parent_resolved_through_registry(self):
        ctx = make_ctx()
        src, mid, _ = build_chain(ctx)
        assert ctx.rdd(mid.lineage.parent_id) is src

    def test_chain_reaches_source(self):
        ctx = make_ctx()
        src, _, top = build_chain(ctx)
        chain = top.lineage_chain()
        assert len(chain) == 3
        assert chain[0].startswith("top=")
        assert chain[-1].startswith("src=source")

    def test_registry_survives_restart(self):
        """The RDD graph is driver state: identical across incarnations."""
        fault = FaultConfig(seed=3, crash_stage="top", crash_task=2)
        ctx = make_ctx(fault)
        src, mid, top = build_chain(ctx)
        with pytest.raises(SimulatedCrash):
            top.evaluate()
        ctx.restart()
        assert ctx.rdd(top.lineage.parent_id) is mid
        assert ctx.rdd(mid.lineage.parent_id) is src


class TestTaskSafepoint:
    def test_crash_at_nth_task(self):
        fault = FaultConfig(seed=3, crash_stage="top", crash_task=3)
        ctx = make_ctx(fault)
        _, _, top = build_chain(ctx)
        with pytest.raises(SimulatedCrash) as exc:
            top.evaluate()
        assert exc.value.safepoint == "task:top"
        # Tasks 1 and 2 completed; the kill preempted task 3 (index 2).
        assert ctx.current_task == ("top", 2)

    def test_other_stages_unaffected(self):
        fault = FaultConfig(seed=3, crash_stage="nonexistent", crash_task=1)
        ctx = make_ctx(fault)
        _, _, top = build_chain(ctx)
        top.evaluate()  # must not raise

    def test_crash_recorded_in_resilience_log(self):
        fault = FaultConfig(seed=3, crash_stage="top", crash_task=1)
        ctx = make_ctx(fault)
        _, _, top = build_chain(ctx)
        with pytest.raises(SimulatedCrash):
            top.evaluate()
        log = ctx.vm.resilience.log
        assert log.crash_count == 1
        assert log.crashes[0].safepoint == "task:top"

    def test_deterministic_across_runs(self):
        def run_once():
            fault = FaultConfig(seed=3, crash_stage="top", crash_task=3)
            ctx = make_ctx(fault)
            _, _, top = build_chain(ctx)
            try:
                top.evaluate()
            except SimulatedCrash as crash:
                return (crash.safepoint, ctx.current_task, ctx.vm.clock.now)
            return None

        assert run_once() == run_once()
        assert run_once() is not None


class TestRestart:
    def test_adopts_committed_blocks(self):
        fault = FaultConfig(seed=3, crash_stage="top", crash_task=6)
        ctx = make_ctx(fault)
        _, mid, top = build_chain(ctx)
        result = run_job(ctx, lambda: _two_pass(ctx, top))
        assert result.restarts == 1
        assert result.value == crash_free_value()
        assert result.blocks_adopted == mid.num_partitions
        assert result.blocks_lost == 0
        bm = ctx.block_manager
        assert bm.adoptions == mid.num_partitions
        assert bm.recomputes == 0

    def test_adopted_blocks_live_in_h2(self):
        fault = FaultConfig(seed=3, crash_stage="top", crash_task=6)
        ctx = make_ctx(fault)
        _, mid, top = build_chain(ctx)
        run_job(ctx, lambda: _two_pass(ctx, top))
        entry = ctx.block_manager.entries[(mid.rdd_id, 0)]
        assert entry.charged == "h2"
        assert entry.partition.root.space is SpaceId.H2
        assert entry.label == mid.block_label(0)

    def test_successor_state_is_fresh(self):
        """Nothing of the dead incarnation leaks into the successor."""
        fault = FaultConfig(seed=3, crash_stage="top", crash_task=6)
        ctx = make_ctx(fault)
        _, _, top = build_chain(ctx)
        old = ctx.vm
        # Dirty the old VM's per-incarnation state: EWMAs, circuit, a
        # pressure handler, an alloc stall.
        for _ in range(4):
            old.health.observe("nvme", "write", 4096, 2e-4, 1e-4)
        assert old.governor.blocks_h2_caching()
        old.alloc_stalls = 7
        marker = []
        old.register_pressure_handler(lambda n: marker.append(n) or 0)
        with pytest.raises(SimulatedCrash):
            _two_pass(ctx, top)
        ctx.restart()
        successor = ctx.vm
        assert successor is not old
        assert old.retired
        # Recovery I/O feeds the successor's monitor with *clean*
        # observations; the dead VM's brownout EWMAs must not carry over.
        assert successor.health.ewma_ratio("nvme") == 1.0
        assert successor.health.transitions == []
        assert successor.health.errors == 0
        assert not successor.governor.blocks_h2_caching()
        assert successor.alloc_stalls == 0
        # The successor's only handler is its own block manager's.
        assert successor.pressure_handlers == [
            ctx.block_manager.shed_blocks
        ]
        # The old VM is inert: late registrations are dropped, and its
        # health monitor no longer drives any listener.
        old.register_pressure_handler(lambda n: 0)
        assert old.pressure_handlers == []
        assert old.health._listeners == []

    def test_incarnation_and_log_continuity(self):
        fault = FaultConfig(seed=3, crash_stage="top", crash_task=6)
        ctx = make_ctx(fault)
        _, _, top = build_chain(ctx)
        assert ctx.incarnation == 1
        with pytest.raises(SimulatedCrash):
            _two_pass(ctx, top)
        report = ctx.restart()
        assert ctx.incarnation == 2
        assert report.incarnation == 2
        log = ctx.vm.resilience.log
        # The successor's log absorbed the crash from incarnation 1.
        assert log.crash_count == 1
        assert log.restart_count == 1

    def test_uncommitted_blocks_lost_then_recomputed(self):
        # Kill during the very first coalesced H2 flush: nothing durable.
        fault = FaultConfig(seed=3, crash_point="h2_flush", crash_after=1)
        ctx = make_ctx(fault)
        _, mid, top = build_chain(ctx)
        result = run_job(ctx, lambda: _two_pass(ctx, top))
        assert result.value == crash_free_value()
        assert result.blocks_adopted == 0
        assert result.blocks_lost == mid.num_partitions
        bm = ctx.block_manager
        assert bm.recomputes == mid.num_partitions
        log = ctx.vm.resilience.log
        assert log.adoption_count("recomputed") == mid.num_partitions


def _two_pass(ctx, top):
    total = top.evaluate()
    ctx.vm.major_gc()
    return total + top.evaluate()


class TestQuarantinedBlocks:
    def _restarted_ctx(self):
        fault = FaultConfig(seed=3, crash_stage="top", crash_task=6)
        ctx = make_ctx(fault)
        _, mid, top = build_chain(ctx)
        with pytest.raises(SimulatedCrash):
            _two_pass(ctx, top)
        return ctx, mid, top

    def test_quarantined_label_drops_block(self):
        ctx, mid, top = self._restarted_ctx()
        label = mid.block_label(0)
        report = ctx.restart()
        # Re-run adoption for partition 0 as if recovery had quarantined
        # its regions (torn data): the block must be dropped, not served.
        bm = ctx.block_manager
        bm._remove_entry((mid.rdd_id, 0))
        outcome = bm.adopt_recovered(
            mid, mid.partitions[0], {label: "torn-data"}
        )
        assert outcome == "quarantined"
        assert (mid.rdd_id, 0) not in bm.entries
        assert label not in ctx.vm.h2_recovery_anchors
        assert report.blocks[label] == "adopted"  # original pass adopted it
        # The next access recomputes from lineage and counts it.
        before = bm.recomputes
        top.evaluate()
        assert bm.recomputes == before + 1

    def test_shape_mismatch_is_lost(self):
        ctx, mid, _ = self._restarted_ctx()
        ctx.restart()
        bm = ctx.block_manager
        bm._remove_entry((mid.rdd_id, 0))
        # An anchor whose object multiset disagrees with the partition
        # spec must not be adopted as that partition.
        anchor = ctx.vm.h2_recovery_anchors.get(mid.block_label(1))
        assert anchor is not None
        ctx.vm.h2_recovery_anchors[mid.block_label(0)] = anchor
        spec = mid.partitions[0]
        wrong = type(spec)(
            index=0,
            num_chunks=spec.num_chunks + 3,
            chunk_size=spec.chunk_size,
        )
        outcome = bm.adopt_recovered(mid, wrong, {})
        assert outcome == "lost"
        assert bm.lost_blocks == 1


class TestGovernorOpenFallback:
    """Satellite: quarantined block + OPEN circuit on the successor."""

    def _ctx_with_open_circuit_and_quarantine(self):
        fault = FaultConfig(seed=3, crash_stage="top", crash_task=6)
        ctx = make_ctx(fault)
        _, mid, top = build_chain(ctx)
        with pytest.raises(SimulatedCrash):
            _two_pass(ctx, top)
        ctx.restart()
        bm = ctx.block_manager
        # Quarantine partition 0's block, then brown out the device so
        # the circuit opens: the recompute may not re-aim at H2.
        bm._remove_entry((mid.rdd_id, 0))
        bm.adopt_recovered(
            mid, mid.partitions[0], {mid.block_label(0): "torn-data"}
        )
        for _ in range(4):
            ctx.vm.health.observe("nvme", "write", 4096, 2e-4, 1e-4)
        assert ctx.vm.governor.blocks_h2_caching()
        return ctx, mid

    def test_fallback_chain_no_double_charge(self):
        from repro.devices.nvme import NVMeSSD

        ctx, mid = self._ctx_with_open_circuit_and_quarantine()
        bm = ctx.block_manager
        vm = ctx.vm
        # Give the conf a real off-heap device so a buggy fallback chain
        # *could* charge device reads — then prove it doesn't.
        dev = NVMeSSD(vm.clock)
        ctx.conf.offheap_device = dev
        # First access: lineage recompute + serialized-on-heap fallback.
        part = mid.compute_partition(0)
        assert part is not None
        assert bm.recomputes == 1
        assert bm.governor_fallbacks == 1
        entry = bm.entries[(mid.rdd_id, 0)]
        assert entry.kind == "blob"
        assert entry.heap_blob is not None
        # Further accesses deserialize the on-heap holder: they must not
        # touch the device, must not re-count the recompute, and must
        # charge the serdes cost exactly once per access (second and
        # third access deltas identical — nothing accumulates twice).
        reads_before = dev.traffic.read_ops
        before_2nd = vm.clock.total(Bucket.SD_IO)
        deser_before = bm.deserializations
        mid.compute_partition(0)
        second_delta = vm.clock.total(Bucket.SD_IO) - before_2nd
        before_3rd = vm.clock.total(Bucket.SD_IO)
        mid.compute_partition(0)
        third_delta = vm.clock.total(Bucket.SD_IO) - before_3rd
        assert bm.deserializations == deser_before + 2
        assert dev.traffic.read_ops == reads_before
        assert second_delta == pytest.approx(third_delta)
        assert bm.recomputes == 1

    def test_open_circuit_does_not_recount_recompute(self):
        ctx, mid = self._ctx_with_open_circuit_and_quarantine()
        bm = ctx.block_manager
        mid.compute_partition(0)
        mid.compute_partition(0)
        mid.compute_partition(0)
        assert bm.recomputes == 1


class TestRetryPolicy:
    def test_poisoned_partition_fails_fast(self):
        # Every incarnation dies with the same task in flight.
        fault = FaultConfig(seed=3, crash_rate=1.0)
        ctx = make_ctx(fault)
        _, _, top = build_chain(ctx)
        policy = JobRetryPolicy(max_restarts=50, max_partition_attempts=3)
        with pytest.raises(RetryExhausted) as exc:
            run_job(ctx, top.evaluate, policy)
        assert "poisoned" in str(exc.value)
        assert exc.value.task is not None
        assert exc.value.restarts < 50

    def test_restart_budget_exhausts(self):
        fault = FaultConfig(seed=3, crash_rate=1.0)
        ctx = make_ctx(fault)
        _, _, top = build_chain(ctx)
        policy = JobRetryPolicy(max_restarts=2, max_partition_attempts=100)
        with pytest.raises(RetryExhausted) as exc:
            run_job(ctx, top.evaluate, policy)
        assert exc.value.restarts == 2
        assert "gave up after 2" in str(exc.value)

    def test_zero_crash_zero_restarts(self):
        ctx = make_ctx(FaultConfig(seed=3))
        _, _, top = build_chain(ctx)
        result = run_job(ctx, lambda: _two_pass(ctx, top))
        assert result.restarts == 0
        assert result.value == crash_free_value()


class TestCrashScheduleProperty:
    """Any crash schedule terminates: right answer or diagnosed failure."""

    @settings(max_examples=10, deadline=None)
    @given(
        crash=st.one_of(
            st.tuples(
                st.sampled_from(
                    [
                        "task:top",
                        "h2_flush",
                        "epoch_commit",
                        "promotion_flush",
                        "major_compact",
                        "region_metadata_update",
                    ]
                ),
                st.integers(min_value=1, max_value=12),
            ),
            st.floats(min_value=0.001, max_value=0.05),
        ),
        persist_mid=st.booleans(),
        persist_top=st.booleans(),
    )
    def test_always_terminates_correctly(
        self, crash, persist_mid, persist_top
    ):
        if isinstance(crash, tuple):
            point, nth = crash
            if point == "task:top":
                fault = FaultConfig(seed=3, crash_stage="top", crash_task=nth)
            else:
                fault = FaultConfig(seed=3, crash_point=point, crash_after=nth)
        else:
            fault = FaultConfig(seed=3, crash_rate=crash)
        ctx = make_ctx(fault, partitions=2)
        _, _, top = build_chain(ctx, persist_mid, persist_top)
        expected = crash_free_value(persist_mid, persist_top, partitions=2)
        try:
            result = run_job(ctx, lambda: _two_pass(ctx, top))
        except RetryExhausted as exc:
            # Diagnosed failure is acceptable; silent corruption is not.
            assert exc.restarts >= 0
            return
        assert result.value == expected
        # Every persisted block is accounted for on every restart.
        for report in result.reports:
            persisted = (2 if persist_mid else 0) + (2 if persist_top else 0)
            assert len(report.blocks) == persisted
