"""Configuration validation and derived layout sizes."""

import pytest

from repro.config import (
    CostModel,
    G1Config,
    PantheraConfig,
    TeraHeapConfig,
    VMConfig,
)
from repro.errors import ConfigError
from repro.units import GB, MB, gb


def test_default_layout_partitions_heap():
    cfg = VMConfig(heap_size=gb(60))
    assert cfg.young_size + cfg.old_size == cfg.heap_size
    assert cfg.eden_size + 2 * cfg.survivor_size == cfg.young_size


def test_heap_must_be_positive():
    with pytest.raises(ConfigError):
        VMConfig(heap_size=0)


def test_young_fraction_bounds():
    with pytest.raises(ConfigError):
        VMConfig(heap_size=gb(8), young_fraction=1.5)


def test_unknown_collector_rejected():
    with pytest.raises(ConfigError):
        VMConfig(heap_size=gb(8), collector="zgc")


def test_known_collectors_accepted():
    for name in ("ps", "ps11", "g1", "panthera", "memmode"):
        kwargs = {}
        if name == "panthera":
            kwargs["panthera"] = PantheraConfig()
        VMConfig(heap_size=gb(8), collector=name, **kwargs)


def test_teraheap_requires_ps_family():
    with pytest.raises(ConfigError):
        VMConfig(
            heap_size=gb(8),
            collector="g1",
            teraheap=TeraHeapConfig(enabled=True),
        )


def test_teraheap_stripe_defaults_to_region():
    th = TeraHeapConfig(region_size=4 * MB, h2_size=400 * MB)
    assert th.stripe_size == th.region_size


def test_teraheap_h2_multiple_of_region():
    with pytest.raises(ConfigError):
        TeraHeapConfig(h2_size=100 * MB + 7, region_size=16 * MB)


def test_teraheap_threshold_ordering():
    with pytest.raises(ConfigError):
        TeraHeapConfig(high_threshold=0.5, low_threshold=0.8)


def test_teraheap_high_threshold_bounds():
    with pytest.raises(ConfigError):
        TeraHeapConfig(high_threshold=0.0)


def test_teraheap_low_threshold_none_allowed():
    th = TeraHeapConfig(low_threshold=None)
    assert th.low_threshold is None


def test_region_policy_validation():
    with pytest.raises(ConfigError):
        TeraHeapConfig(region_policy="magic")
    for policy in ("deps", "groups"):
        assert TeraHeapConfig(region_policy=policy).region_policy == policy


def test_cost_model_defaults_sane():
    cost = CostModel()
    assert cost.gc_visit_cost > 0
    assert cost.serialize_bw > 0
    assert cost.teraheap_barrier_extra < cost.barrier_cost
    assert 0.0 < cost.sd_temp_object_ratio < 1.0


def test_g1_config_defaults():
    g1 = G1Config()
    assert g1.region_size == 32 * MB
    assert 0 < g1.mixed_collection_fraction <= 1


def test_panthera_split():
    p = PantheraConfig(dram_old_size=6 * GB, nvm_old_size=48 * GB)
    assert p.dram_old_size < p.nvm_old_size
