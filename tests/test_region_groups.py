"""Union-find region groups — the Section 3.3 alternative policy."""

from repro.teraheap.region_groups import RegionGroups


def test_singleton_groups():
    g = RegionGroups()
    g.add(1)
    g.add(2)
    assert not g.same_group(1, 2)


def test_union_merges():
    g = RegionGroups()
    g.union(1, 2)
    assert g.same_group(1, 2)


def test_transitive_union():
    g = RegionGroups()
    g.union(1, 2)
    g.union(2, 3)
    assert g.same_group(1, 3)
    assert g.group_members(1) == {1, 2, 3}


def test_find_is_idempotent():
    g = RegionGroups()
    g.union(1, 2)
    assert g.find(1) == g.find(g.find(1))


def test_live_regions_whole_group():
    """One H1 reference into a group keeps the entire group alive — the
    imprecision that motivates dependency lists (X->Y->Z example)."""
    g = RegionGroups()
    g.union(1, 2)  # X -> Y
    g.union(2, 3)  # Y -> Z
    live = g.live_regions(h1_referenced=[3])  # only Z referenced
    assert live == {1, 2, 3}  # X and Y cannot be reclaimed


def test_live_regions_independent_groups():
    g = RegionGroups()
    g.union(1, 2)
    g.union(10, 11)
    live = g.live_regions(h1_referenced=[1])
    assert live == {1, 2}


def test_remove_reclaimed_regions():
    g = RegionGroups()
    g.union(1, 2)
    g.union(3, 4)
    g.remove([1, 2])
    assert g.group_members(3) == {3, 4}
    # Removed regions re-enter as singletons if referenced again.
    assert g.group_members(1) == {1}


def test_remove_preserves_remaining_group_structure():
    g = RegionGroups()
    g.union(1, 2)
    g.union(2, 3)
    g.remove([2])
    assert g.same_group(1, 3)


def test_union_by_rank_is_stable():
    g = RegionGroups()
    for i in range(100):
        g.union(0, i)
    assert len(g.group_members(0)) == 100
