"""Shared fixtures: small VMs, devices and object-graph helpers."""

from __future__ import annotations

import pytest

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.clock import Clock
from repro.devices.nvme import NVMeSSD
from repro.units import KiB


@pytest.fixture(autouse=True)
def _audit_integration_tests(request, monkeypatch):
    """Run the cheap post-GC auditor inside the integration tests.

    Every VM those tests build verifies space/region accounting and
    address-map bijectivity after each GC cycle, so a regression that
    corrupts heap metadata fails loudly instead of skewing results.
    """
    if request.node.path.name == "test_integration.py":
        monkeypatch.setenv("REPRO_AUDIT", "cheap")


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def nvme(clock):
    return NVMeSSD(clock)


@pytest.fixture
def vm():
    """A plain PS-collected VM with a small heap."""
    return JavaVM(VMConfig(heap_size=gb(8), page_cache_size=gb(4)))


@pytest.fixture
def th_vm():
    """A TeraHeap-enabled VM with small H2 regions."""
    config = VMConfig(
        heap_size=gb(8),
        teraheap=TeraHeapConfig(
            enabled=True, h2_size=gb(64), region_size=16 * KiB
        ),
        page_cache_size=gb(4),
    )
    return JavaVM(config)


from helpers import make_group


@pytest.fixture
def group_factory():
    return make_group
