"""Device models: latency/bandwidth costs, page granularity, traffic."""

import pytest

from repro.clock import Bucket, Clock
from repro.devices.base import AccessPattern, Device, DeviceTraffic
from repro.devices.dram import DRAM
from repro.devices.nvm import NVM, NVMMemoryMode
from repro.devices.nvme import NVMeSSD
from repro.units import KiB, gb


def test_read_cost_is_latency_plus_bandwidth():
    clock = Clock()
    dev = Device(
        name="d", read_latency=1.0, read_bw=100.0, page_size=1, clock=clock
    )
    cost = dev.read(200)
    assert cost == pytest.approx(1.0 + 2.0)
    assert clock.now == pytest.approx(cost)


def test_write_cost():
    clock = Clock()
    dev = Device(name="d", write_latency=0.5, write_bw=100.0, clock=clock)
    assert dev.write(100) == pytest.approx(0.5 + 1.0)


def test_page_granularity_amplifies_small_reads():
    clock = Clock()
    dev = NVMeSSD(clock)
    dev.read(100)  # sub-page read moves a whole 4 KB page
    assert dev.traffic.bytes_read == 4 * KiB


def test_multi_page_rounding():
    clock = Clock()
    dev = NVMeSSD(clock)
    dev.write(4 * KiB + 1)
    assert dev.traffic.bytes_written == 8 * KiB


def test_random_pattern_penalty():
    clock = Clock()
    dev = NVMeSSD(clock)
    seq = dev.read(4 * KiB, AccessPattern.SEQUENTIAL)
    rand = dev.read(4 * KiB, AccessPattern.RANDOM)
    assert rand > seq


def test_requests_multiply_latency():
    clock = Clock()
    dev = NVM(clock)
    one = dev.read(1024, requests=1)
    many = dev.read(1024, requests=100)
    assert many > one


def test_charges_go_to_current_bucket():
    clock = Clock()
    dev = NVMeSSD(clock)
    with clock.context(Bucket.MAJOR_GC):
        dev.read(4 * KiB)
    assert clock.total(Bucket.MAJOR_GC) > 0
    assert clock.total(Bucket.OTHER) == 0


def test_read_modify_write_costs_both_directions():
    clock = Clock()
    dev = NVMeSSD(clock)
    cost = dev.read_modify_write(100)
    assert dev.traffic.bytes_read == 4 * KiB
    assert dev.traffic.bytes_written == 4 * KiB
    assert cost > 0


def test_dram_is_byte_addressable():
    clock = Clock()
    dev = DRAM(clock)
    dev.read(100)
    assert dev.traffic.bytes_read == 100


def test_device_speed_ordering():
    """DRAM > NVM > NVMe for small random reads (the paper's hierarchy)."""
    clock = Clock()
    costs = {}
    for cls in (DRAM, NVM, NVMeSSD):
        dev = cls(Clock())
        costs[cls.__name__] = dev.read(4 * KiB, AccessPattern.RANDOM)
    assert costs["DRAM"] < costs["NVM"] < costs["NVMeSSD"]


def test_traffic_snapshot_delta():
    t = DeviceTraffic(bytes_read=100, bytes_written=50, read_ops=2, write_ops=1)
    snap = t.snapshot()
    t.bytes_read += 10
    delta = t.delta(snap)
    assert delta.bytes_read == 10
    assert delta.bytes_written == 0


def test_traffic_reset():
    t = DeviceTraffic(bytes_read=5)
    t.reset()
    assert t.bytes_read == 0


class TestNVMMemoryMode:
    def test_high_hit_ratio_when_working_set_fits(self):
        dev = NVMMemoryMode(Clock(), dram_cache_size=gb(100))
        dev.working_set = gb(10)
        assert dev.hit_ratio() == dev.mutator_hit_cap

    def test_hit_ratio_degrades_with_overflow(self):
        dev = NVMMemoryMode(Clock(), dram_cache_size=gb(10))
        dev.working_set = gb(100)
        assert dev.hit_ratio() < dev.mutator_hit_cap

    def test_hit_ratio_floor(self):
        dev = NVMMemoryMode(Clock(), dram_cache_size=gb(1))
        dev.working_set = gb(10000)
        assert dev.hit_ratio() == pytest.approx(0.10)

    def test_gc_reads_cost_more_than_mutator_reads(self):
        c1, c2 = Clock(), Clock()
        d1 = NVMMemoryMode(c1)
        d2 = NVMMemoryMode(c2)
        d1.working_set = d2.working_set = gb(10)
        mutator = d1.read(64 * KiB)
        gc = d2.gc_read(64 * KiB)
        assert gc > mutator

    def test_gc_write_charges_clock(self):
        clock = Clock()
        dev = NVMMemoryMode(clock)
        dev.gc_write(4 * KiB)
        assert clock.now > 0
