"""The paper's future-work extensions: adaptive thresholds (§7.2),
size-aware H2 placement (§7.3), DataFrame/Dataset APIs, trace export,
the CLI, and Giraph vertex offloading."""

import pytest

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.devices.nvme import NVMeSSD
from repro.frameworks.spark import CachePolicy, SparkConf, SparkContext
from repro.frameworks.spark.sql_api import Dataset, Schema, read_table
from repro.heap.object_model import SpaceId
from repro.metrics import trace
from repro.teraheap.thresholds import AdaptiveThresholdPolicy
from repro.units import KiB

from helpers import make_group


# ---------------------------------------------------------------------
# Adaptive thresholds (§7.2 future work)
# ---------------------------------------------------------------------
class TestAdaptiveThresholds:
    def test_single_spike_does_not_tighten(self):
        policy = AdaptiveThresholdPolicy(heap_capacity=1000)
        policy.decide(live_bytes=950)  # one pressure event (e.g. loading)
        assert policy.high_threshold == 0.85

    def test_sustained_pressure_tightens_thresholds(self):
        policy = AdaptiveThresholdPolicy(heap_capacity=1000)
        for _ in range(policy.PRESSURE_WINDOW):
            policy.decide(live_bytes=950)
        assert policy.high_threshold < 0.85
        assert policy.low_threshold < 0.50

    def test_calm_relaxes_back(self):
        policy = AdaptiveThresholdPolicy(heap_capacity=1000)
        for _ in range(policy.PRESSURE_WINDOW):
            policy.decide(950)
        tightened = policy.high_threshold
        for _ in range(policy.CALM_WINDOW):
            policy.decide(100)
        assert policy.high_threshold > tightened

    def test_never_exceeds_configured(self):
        policy = AdaptiveThresholdPolicy(heap_capacity=1000)
        for _ in range(20):
            policy.decide(100)
        assert policy.high_threshold <= policy.configured_high

    def test_floor_respected(self):
        policy = AdaptiveThresholdPolicy(heap_capacity=1000)
        for _ in range(50):
            policy.decide(990)
        assert policy.high_threshold >= policy.MIN_HIGH
        assert policy.low_threshold < policy.high_threshold

    def test_wired_into_collector(self):
        vm = JavaVM(
            VMConfig(
                heap_size=gb(4),
                teraheap=TeraHeapConfig(
                    enabled=True,
                    h2_size=gb(32),
                    region_size=16 * KiB,
                    adaptive_thresholds=True,
                ),
            )
        )
        assert isinstance(vm.collector.policy, AdaptiveThresholdPolicy)

    def test_adaptive_avoids_repeat_pressure(self):
        """After pressure fires once, the tightened threshold transfers
        earlier, so sustained allocation does not re-trigger it as often."""
        counts = {}
        for adaptive in (False, True):
            vm = JavaVM(
                VMConfig(
                    heap_size=gb(2),
                    teraheap=TeraHeapConfig(
                        enabled=True,
                        h2_size=gb(64),
                        region_size=16 * KiB,
                        high_threshold=0.6,
                        low_threshold=0.4,
                        adaptive_thresholds=adaptive,
                    ),
                    page_cache_size=gb(1),
                )
            )
            for i in range(6):
                root, _ = make_group(vm, count=40, size=4 * KiB, name=f"g{i}")
                vm.h2_tag_root(root, f"g{i}")
                vm.major_gc()
            counts[adaptive] = vm.collector.policy.pressure_transfers
        assert counts[True] <= counts[False]


# ---------------------------------------------------------------------
# Size-aware placement (§7.3 future work)
# ---------------------------------------------------------------------
class TestSizeAwarePlacement:
    def make_vm(self, size_aware):
        return JavaVM(
            VMConfig(
                heap_size=gb(8),
                teraheap=TeraHeapConfig(
                    enabled=True,
                    h2_size=gb(64),
                    region_size=16 * KiB,
                    size_aware_placement=size_aware,
                ),
                page_cache_size=gb(2),
            )
        )

    def build_mixed_group(self, vm):
        with vm.roots.frame() as frame:
            small = [frame.push(vm.allocate(512)) for _ in range(20)]
            large = [frame.push(vm.allocate(6 * KiB)) for _ in range(4)]
            root = vm.allocate(256, refs=small + large)
        vm.roots.add(root)
        return root, small, large

    def test_large_objects_segregated(self):
        vm = self.make_vm(True)
        root, small, large = self.build_mixed_group(vm)
        vm.h2_tag_root(root, "mix")
        vm.h2_move("mix")
        vm.major_gc()
        small_regions = {o.region_id for o in small}
        large_regions = {o.region_id for o in large}
        assert not (small_regions & large_regions)

    def test_default_keeps_group_together(self):
        vm = self.make_vm(False)
        root, small, large = self.build_mixed_group(vm)
        vm.h2_tag_root(root, "mix")
        vm.h2_move("mix")
        vm.major_gc()
        # Some region holds both small and large members.
        small_regions = {o.region_id for o in small}
        large_regions = {o.region_id for o in large}
        assert small_regions & large_regions


# ---------------------------------------------------------------------
# DataFrame / Dataset API
# ---------------------------------------------------------------------
class TestDataFrameAPI:
    def make_ctx(self, th=False):
        thc = (
            TeraHeapConfig(enabled=True, h2_size=gb(64), region_size=64 * KiB)
            if th
            else TeraHeapConfig()
        )
        vm = JavaVM(
            VMConfig(heap_size=gb(8), teraheap=thc, page_cache_size=gb(2))
        )
        return SparkContext(
            vm,
            SparkConf(
                cache_policy=(
                    CachePolicy.TERAHEAP if th else CachePolicy.SD
                ),
                offheap_device=NVMeSSD(vm.clock),
            ),
        )

    def test_schema_projection(self):
        schema = Schema([("a", 8), ("b", 100), ("c", 20)])
        projected = schema.project(["a", "c"])
        assert projected.column_names() == ["a", "c"]
        assert projected.row_bytes == 28

    def test_select_shrinks_rows(self):
        ctx = self.make_ctx()
        df = read_table(
            ctx, gb(2), Schema([("k", 8), ("v", 120)]), name="t"
        )
        small = df.select("k")
        assert small.rdd.size_bytes < df.rdd.size_bytes

    def test_where_selectivity_validated(self):
        ctx = self.make_ctx()
        df = read_table(ctx, gb(1))
        with pytest.raises(ValueError):
            df.where(0.0)

    def test_join_shuffles_and_widens(self):
        ctx = self.make_ctx()
        left = read_table(ctx, gb(1), Schema([("k", 8), ("a", 56)]))
        right = read_table(ctx, gb(1), Schema([("k", 8), ("b", 56)]))
        joined = left.join(right)
        assert ctx.shuffle_manager.shuffles >= 2
        assert len(joined.schema.columns) == 4

    def test_cached_dataframe_migrates_to_h2(self):
        ctx = self.make_ctx(th=True)
        df = read_table(ctx, gb(1)).where(0.5).persist()
        df.count()
        ctx.vm.major_gc()
        entry = ctx.block_manager.entries[(df.rdd.rdd_id, 0)]
        assert entry.partition.root.space is SpaceId.H2

    def test_dataset_typed_overhead(self):
        ctx = self.make_ctx()
        ds = Dataset(read_table(ctx, gb(1)).rdd, Schema([("k", 8)]))
        mapped = ds.map_elements(2)
        assert isinstance(mapped, Dataset)
        assert mapped.rdd.compute_ops_per_chunk > 2

    def test_group_by_reduces(self):
        ctx = self.make_ctx()
        df = read_table(ctx, gb(2))
        grouped = df.group_by(reduction=0.1)
        assert grouped.rdd.size_bytes < df.rdd.size_bytes


# ---------------------------------------------------------------------
# Trace export
# ---------------------------------------------------------------------
class TestTraceExport:
    def test_gc_timeline_csv(self):
        vm = JavaVM(VMConfig(heap_size=gb(4)))
        root = vm.allocate(4 * KiB)
        vm.roots.add(root)
        vm.minor_gc()
        vm.major_gc()
        csv_text = trace.gc_timeline_csv(vm.collector.stats.cycles)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("kind,start_time_s")
        assert len(lines) == 3  # header + 2 cycles
        assert lines[1].startswith("minor,")
        assert lines[2].startswith("major,")

    def test_breakdown_csv(self):
        vm = JavaVM(VMConfig(heap_size=gb(4)))
        vm.allocate(1024)
        csv_text = trace.breakdown_csv(vm, label="x")
        lines = csv_text.strip().splitlines()
        assert "other" in lines[0]
        assert lines[1].startswith("x,")

    def test_region_liveness_csv(self, tmp_path):
        from repro.teraheap.regions import RegionLiveness

        csv_text = trace.region_liveness_csv(
            [RegionLiveness(10, 5, 8000, 4000, 16384)]
        )
        assert "0.5000" in csv_text
        path = tmp_path / "r.csv"
        trace.write_csv(str(path), csv_text)
        assert path.read_text() == csv_text


# ---------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------
class TestCLI:
    def test_list(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "table5" in out

    def test_table5(self, capsys):
        from repro.__main__ import main

        assert main(["table5"]) == 0
        assert "417" in capsys.readouterr().out

    def test_barrier(self, capsys):
        from repro.__main__ import main

        assert main(["barrier"]) == 0
        assert "overhead" in capsys.readouterr().out


# ---------------------------------------------------------------------
# Giraph vertex offloading
# ---------------------------------------------------------------------
class TestVertexOffload:
    def test_offload_and_reload_vertices(self):
        from repro.frameworks.giraph import (
            GiraphConf,
            GiraphJob,
            GiraphMode,
            PageRankProgram,
        )
        from repro.workloads.generators import make_graph

        graph = make_graph(gb(2), num_vertices=200, avg_degree=4, seed=7)
        vm = JavaVM(VMConfig(heap_size=gb(8), page_cache_size=gb(2)))
        conf = GiraphConf(mode=GiraphMode.OOC, device=NVMeSSD(vm.clock))
        job = GiraphJob(vm, conf, graph)
        job.load_graph()
        freed, to_write = job.offload_vertices(0)
        assert freed > 0
        assert to_write > 0  # vertex values are mutable: always rewritten
        assert job.vertex_objs[0] is None
        # The next superstep touching partition 0 reloads transparently.
        job.run(PageRankProgram(graph, iterations=2))
        assert job.vertex_objs[0] is not None
