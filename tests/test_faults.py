"""Fault injection, H2 I/O resilience, and post-GC invariant auditing."""

import pytest

from helpers import make_group
from repro import (
    DeviceFullError,
    DeviceIOError,
    InvariantViolation,
    JavaVM,
    OutOfMemoryError,
    SegmentationFault,
    TeraHeapConfig,
    VMConfig,
    gb,
)
from repro.clock import Clock
from repro.devices.mmap import MappedFile
from repro.devices.nvm import NVM
from repro.devices.nvme import NVMeSSD
from repro.devices.page_cache import PageCache
from repro.errors import ConfigError
from repro.faults import (
    FaultConfig,
    FaultInjector,
    FaultKind,
    FaultPlan,
    ResilienceLog,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.heap.object_model import HeapObject, SpaceId
from repro.teraheap.h2_heap import H2_BASE, H2Heap
from repro.units import KiB, MiB

DEVICES = [
    pytest.param(NVMeSSD, id="nvme"),
    pytest.param(NVM, id="nvm"),
]


def th_config(faults=None, audit=None, heap=8, cache=gb(4)):
    return VMConfig(
        heap_size=gb(heap),
        teraheap=TeraHeapConfig(
            enabled=True, h2_size=gb(64), region_size=16 * KiB
        ),
        page_cache_size=cache,
        faults=faults,
        audit=audit,
    )


def run_workload(vm, groups=4, count=12, size=2 * KiB):
    """Tag/move several object groups to H2 and touch them afterwards."""
    for g in range(groups):
        label = f"grp-{g}"
        root, children = make_group(vm, count=count, size=size, name=label)
        vm.h2_tag_root(root, label)
        vm.h2_move(label)
        vm.major_gc()
        for child in children[:4]:
            vm.read_object(child)
        vm.minor_gc()
    return vm


# ======================================================================
# Injector faults, per fault kind x device type
# ======================================================================
@pytest.mark.parametrize("device_cls", DEVICES)
def test_injected_read_error(device_cls):
    clock = Clock()
    device = device_cls(clock)
    plan = FaultPlan(FaultConfig(read_error_rate=1.0))
    injector = FaultInjector(device, plan)
    with pytest.raises(DeviceIOError) as excinfo:
        injector.read(4096)
    assert excinfo.value.transient
    assert excinfo.value.device == device.name
    assert excinfo.value.op == "read"
    # The failed request still travelled to the device and back.
    assert clock.now > 0
    assert plan.injected[FaultKind.READ_ERROR] == 1


@pytest.mark.parametrize("device_cls", DEVICES)
def test_injected_write_error(device_cls):
    clock = Clock()
    device = device_cls(clock)
    plan = FaultPlan(FaultConfig(write_error_rate=1.0))
    injector = FaultInjector(device, plan)
    with pytest.raises(DeviceIOError) as excinfo:
        injector.write(4096)
    assert excinfo.value.transient and excinfo.value.op == "write"
    assert device.traffic.bytes_written == 0  # nothing actually landed
    assert plan.injected[FaultKind.WRITE_ERROR] == 1


@pytest.mark.parametrize("device_cls", DEVICES)
def test_injected_latency_spike(device_cls):
    plan = FaultPlan(
        FaultConfig(latency_spike_rate=1.0, latency_spike_multiplier=4.0)
    )
    clock = Clock()
    injector = FaultInjector(device_cls(clock), plan)
    spiked = injector.read(4096)
    baseline = device_cls(Clock()).read(4096)
    assert spiked == pytest.approx(4.0 * baseline)
    assert clock.now == pytest.approx(spiked)
    assert plan.injected[FaultKind.LATENCY_SPIKE] == 1


@pytest.mark.parametrize("device_cls", DEVICES)
def test_injected_device_full_on_region_allocation(device_cls):
    clock = Clock()
    policy = ResiliencePolicy(FaultConfig(device_full_rate=1.0), clock)
    h2 = H2Heap(
        TeraHeapConfig(enabled=True, h2_size=gb(64), region_size=16 * KiB),
        device_cls(clock),
        clock,
        page_cache_size=gb(4),
        resilience=policy,
    )
    with pytest.raises(DeviceFullError) as excinfo:
        h2.assign_address(HeapObject(1024), "label", epoch=1)
    assert not excinfo.value.transient
    assert excinfo.value.requested == 16 * KiB
    assert policy.plan.injected[FaultKind.DEVICE_FULL] == 1


@pytest.mark.parametrize("device_cls", DEVICES)
def test_injected_sigbus_on_page_fault(device_cls):
    clock = Clock()
    device = device_cls(clock)
    plan = FaultPlan(FaultConfig(sigbus_rate=1.0))
    mapping = MappedFile(
        device,
        H2_BASE,
        1 * MiB,
        PageCache(device, 1 * MiB),
        fault_plan=plan,
    )
    with pytest.raises(SegmentationFault) as excinfo:
        mapping.load(H2_BASE, 4096)
    assert excinfo.value.sigbus
    assert excinfo.value.address == H2_BASE
    assert mapping.sigbus_count == 1
    # The faulted page stayed cached, so the retry hits and succeeds.
    mapping.load(H2_BASE, 4096)


def test_injector_delegates_to_wrapped_device():
    clock = Clock()
    device = NVMeSSD(clock)
    injector = FaultInjector(device, FaultPlan(FaultConfig()))
    assert injector.name == device.name
    assert injector.capacity == device.capacity
    assert injector.traffic is device.traffic
    other = Clock()
    injector.clock = other
    assert device.clock is other


def test_suspended_queries_consume_no_draws():
    plan = FaultPlan(FaultConfig(read_error_rate=1.0))
    with plan.suspend():
        assert plan.io_outcome(write=False, device="d") is None
        assert not plan.allocation_fault("d")
        assert not plan.page_fault_outcome("d", 0)
    assert plan.op_index == 0
    # Injection resumes, and the schedule is unperturbed.
    assert plan.io_outcome(write=False, device="d") is not None
    assert plan.op_index == 1


# ======================================================================
# Retry policy and graceful degradation
# ======================================================================
def test_retry_recovers_and_charges_backoff():
    clock = Clock()
    cfg = FaultConfig(max_attempts=4, backoff_base=1e-3, backoff_factor=2.0)
    retry = RetryPolicy(cfg, clock, ResilienceLog())
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise DeviceIOError("transient", transient=True)
        return "ok"

    assert retry.call("op", flaky) == "ok"
    assert calls["n"] == 3
    assert clock.now == pytest.approx(1e-3 + 2e-3)
    assert retry.log.ops_retried == 1


def test_retry_does_not_touch_persistent_faults():
    retry = RetryPolicy(FaultConfig(), Clock(), ResilienceLog())
    calls = {"n": 0}

    def broken():
        calls["n"] += 1
        raise DeviceIOError("persistent", transient=False)

    with pytest.raises(DeviceIOError):
        retry.call("op", broken)
    assert calls["n"] == 1
    assert not retry.log.retries


def test_exhaustion_degrades_then_falls_back():
    clock = Clock()
    policy = ResiliencePolicy(
        FaultConfig(write_error_rate=1.0, max_attempts=2, failure_budget=1),
        clock,
    )
    injector = policy.wrap_device(NVMeSSD(clock))
    # Every attempt faults; the policy must exhaust retries, degrade, and
    # still complete the operation with injection suspended.
    cost = policy.run("h2_flush", lambda: injector.write(4096))
    assert cost > 0
    assert policy.degraded
    assert policy.log.retry_exhaustions == 1
    assert policy.log.degraded_count == 1
    assert policy.degradation_context()


# ======================================================================
# VM-level resilience
# ======================================================================
def test_faulty_run_completes_without_aborting():
    cfg = FaultConfig(
        seed=11,
        read_error_rate=0.3,
        write_error_rate=0.3,
        latency_spike_rate=0.2,
        sigbus_rate=0.1,
    )
    # A tiny page cache forces mutator loads through the device, so the
    # injector sees the full read path, not just promotion flushes.
    vm = run_workload(
        JavaVM(th_config(faults=cfg, cache=64 * KiB)), groups=8
    )
    assert vm.resilience.plan.total_injected > 0
    assert vm.resilience.log.ops_retried > 0
    assert vm.h2.objects_moved > 0  # the workload still made progress


def test_retry_exhaustion_disables_h2_transfers():
    cfg = FaultConfig(
        seed=5, write_error_rate=1.0, max_attempts=2, failure_budget=1
    )
    vm = JavaVM(th_config(faults=cfg))
    root, children = make_group(vm, count=8, size=2 * KiB, name="a")
    vm.h2_tag_root(root, "a")
    vm.h2_move("a")
    vm.major_gc()  # flush faults every attempt -> degrade, fall back
    assert vm.resilience.degraded
    assert vm.resilience.log.degraded_count == 1
    assert root.space is SpaceId.H2  # placed before the flush failed
    moved_before = vm.h2.objects_moved
    # Degraded: the next group must stay in H1 (serialization fallback).
    root2, _ = make_group(vm, count=8, size=2 * KiB, name="b")
    vm.h2_tag_root(root2, "b")
    vm.h2_move("b")
    vm.major_gc()
    assert root2.in_h1
    assert vm.h2.objects_moved == moved_before


def test_device_full_denials_fall_back_to_h1_compaction():
    cfg = FaultConfig(seed=3, device_full_rate=1.0, failure_budget=2)
    vm = JavaVM(th_config(faults=cfg))
    root, children = make_group(vm, count=8, size=2 * KiB, name="a")
    vm.h2_tag_root(root, "a")
    vm.h2_move("a")
    vm.major_gc()  # every region allocation denied
    assert vm.collector.h2_transfers_denied > 0
    assert vm.h2.objects_moved == 0
    assert root.in_h1 and all(c.in_h1 for c in children)
    assert root.space is not SpaceId.FREED
    assert vm.resilience.degraded  # denials exceeded the budget


def test_oom_reports_degradation_context():
    cfg = FaultConfig(write_error_rate=1.0, failure_budget=1)
    vm = JavaVM(th_config(faults=cfg, heap=2))
    vm.resilience.note_failure("h2_flush", DeviceIOError("injected"))
    assert vm.resilience.degraded
    with pytest.raises(OutOfMemoryError) as excinfo:
        while True:
            vm.roots.add(vm.allocate(128 * KiB))
    assert "degraded" in excinfo.value.context
    assert "degraded" in str(excinfo.value)


# ======================================================================
# Determinism
# ======================================================================
def _seeded_run(seed):
    cfg = FaultConfig(
        seed=seed,
        read_error_rate=0.25,
        write_error_rate=0.25,
        latency_spike_rate=0.2,
        sigbus_rate=0.1,
    )
    return run_workload(JavaVM(th_config(faults=cfg)))


def test_same_seed_same_schedule_and_clock():
    vm1 = _seeded_run(23)
    vm2 = _seeded_run(23)
    digest = vm1.resilience.plan.schedule_digest()
    assert digest == vm2.resilience.plan.schedule_digest()
    assert vm1.resilience.plan.total_injected > 0
    assert vm1.elapsed() == vm2.elapsed()


def test_different_seed_different_schedule():
    assert (
        _seeded_run(23).resilience.plan.schedule_digest()
        != _seeded_run(24).resilience.plan.schedule_digest()
    )


# ======================================================================
# Post-GC auditing
# ======================================================================
def test_full_audit_passes_on_healthy_workload():
    vm = run_workload(JavaVM(th_config(audit="full")))
    assert vm.auditor is not None
    assert vm.auditor.audits_run > 0
    assert vm.auditor.violations_found == 0


def test_full_audit_passes_under_fault_injection():
    cfg = FaultConfig(
        seed=7,
        read_error_rate=0.2,
        write_error_rate=0.2,
        sigbus_rate=0.05,
    )
    vm = run_workload(JavaVM(th_config(faults=cfg, audit="full")))
    assert vm.auditor.audits_run > 0
    assert vm.auditor.violations_found == 0


def test_audit_detects_address_corruption():
    vm = JavaVM(th_config(audit="cheap"))
    vm.roots.add(vm.allocate(1024))
    vm.major_gc()  # healthy: audit passed
    vm.heap.old.objects[0].address += 8
    with pytest.raises(InvariantViolation) as excinfo:
        vm.auditor.audit("major", vm.collector.mark_epoch)
    assert any(v.check == "address-bounds" for v in excinfo.value.violations)
    assert vm.auditor.violations_found > 0


def test_audit_detects_h2_dangling_reference():
    vm = JavaVM(th_config(audit="full"))
    root, _ = make_group(vm, count=4, size=2 * KiB, name="a")
    vm.h2_tag_root(root, "a")
    vm.h2_move("a")
    vm.major_gc()
    assert root.space is SpaceId.H2
    victim = HeapObject(1024)
    victim.space = SpaceId.FREED
    root.refs.append(victim)
    with pytest.raises(InvariantViolation) as excinfo:
        vm.auditor.audit("major", vm.collector.mark_epoch)
    assert any(
        v.check == "h2-dangling-ref" for v in excinfo.value.violations
    )


def test_audit_detects_missing_dependency_edge():
    vm = JavaVM(th_config(audit="full"))
    roots = []
    for label in ("a", "b"):
        root, _ = make_group(vm, count=4, size=2 * KiB, name=label)
        vm.h2_tag_root(root, label)
        vm.h2_move(label)
        vm.major_gc()
        roots.append(root)
    a, b = roots
    assert a.region_id != b.region_id
    # A cross-region reference smuggled in without record_cross_region_ref
    # (i.e. bypassing the write barrier) breaks dependency closure.
    a.refs.append(b)
    with pytest.raises(InvariantViolation) as excinfo:
        vm.auditor.audit("major", vm.collector.mark_epoch)
    assert any(
        v.check == "h2-dependency-closure"
        for v in excinfo.value.violations
    )


def test_config_rejects_unknown_audit_level():
    with pytest.raises(ConfigError):
        VMConfig(heap_size=gb(4), audit="bogus")


# ======================================================================
# CLI: a fig06-style faulted + audited run (the acceptance shape)
# ======================================================================
def test_cli_faulted_audited_fig06_run(capsys):
    from repro.__main__ import main

    rc = main(
        [
            "fig06",
            "--workloads",
            "SVD",
            "--scale",
            "0.3",
            "--faults",
            "42",
            "--fault-rate",
            "0.05",
            "--audit",
            "cheap",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    line = next(
        ln for ln in out.splitlines() if ln.startswith("resilience:")
    )
    fields = dict(
        part.split("=") for part in line.split(None)[1:] if "=" in part
    )
    assert float(fields["faults_injected"]) >= 50
    assert float(fields["invariant_violations"]) == 0
    assert float(fields["audits_run"]) > 0
