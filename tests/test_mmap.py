"""Memory-mapped file regions: faults, huge pages, explicit writes."""

import pytest

from repro.clock import Clock
from repro.devices.mmap import BASE_PAGE, HUGE_PAGE, MappedFile
from repro.devices.nvme import NVMeSSD
from repro.devices.page_cache import PageCache
from repro.errors import SegmentationFault

BASE = 0x1000_0000


@pytest.fixture
def mapping():
    clock = Clock()
    dev = NVMeSSD(clock)
    cache = PageCache(dev, capacity=64 * BASE_PAGE)
    return MappedFile(dev, BASE, 1 << 20, cache), dev


def test_load_faults_pages(mapping):
    m, dev = mapping
    hits, misses = m.load(BASE, 10000)
    assert misses == 3  # 10000 bytes span 3 pages
    assert m.page_faults == 3


def test_second_load_hits_cache(mapping):
    m, _ = mapping
    m.load(BASE, 4096)
    hits, misses = m.load(BASE, 4096)
    assert (hits, misses) == (1, 0)


def test_store_is_read_modify_write(mapping):
    m, dev = mapping
    m.store(BASE + 100, 8)
    # The store faulted the page in (device read), dirty data is written
    # back later.
    assert dev.traffic.bytes_read == BASE_PAGE


def test_out_of_range_access_faults(mapping):
    m, _ = mapping
    with pytest.raises(SegmentationFault):
        m.load(BASE - 1, 8)
    with pytest.raises(SegmentationFault):
        m.load(BASE + (1 << 20), 8)


def test_write_explicit_bypasses_fault_path(mapping):
    m, dev = mapping
    m.write_explicit(BASE, 8 * BASE_PAGE)
    assert dev.traffic.bytes_written == 8 * BASE_PAGE
    assert dev.traffic.bytes_read == 0
    assert m.page_faults == 0


def test_write_explicit_many_coalesces_pages(mapping):
    m, dev = mapping
    # Two spans inside the same page: written once.
    m.write_explicit_many([(BASE, 100), (BASE + 200, 100)])
    assert dev.traffic.bytes_written == BASE_PAGE


def test_discard_invalidates(mapping):
    m, dev = mapping
    m.load(BASE, BASE_PAGE)
    m.discard(BASE, BASE_PAGE)
    before = dev.traffic.bytes_read
    m.load(BASE, BASE_PAGE)
    assert dev.traffic.bytes_read == before + BASE_PAGE


def test_huge_pages_reduce_fault_count():
    clock = Clock()
    dev = NVMeSSD(clock)
    cache = PageCache(dev, capacity=256 * BASE_PAGE)
    m = MappedFile(dev, BASE, 1 << 22, cache, huge_pages=True)
    assert m.page_size == HUGE_PAGE
    m.load(BASE, HUGE_PAGE)  # one fault covers 64 base pages
    assert m.page_faults == 1


def test_huge_pages_scale_cache_granularity():
    clock = Clock()
    dev = NVMeSSD(clock)
    cache = PageCache(dev, capacity=256 * BASE_PAGE)
    MappedFile(dev, BASE, 1 << 22, cache, huge_pages=True)
    assert cache.page_size == HUGE_PAGE
    assert cache.max_pages == 4  # 256 base pages / 64


def test_zero_size_mapping_rejected():
    clock = Clock()
    dev = NVMeSSD(clock)
    cache = PageCache(dev, capacity=64 * BASE_PAGE)
    with pytest.raises(ValueError):
        MappedFile(dev, BASE, 0, cache)
