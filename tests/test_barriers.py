"""Post-write barriers: card marking, range check, overhead claim."""

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.experiments import barrier as barrier_exp
from repro.heap.object_model import SpaceId
from repro.units import KiB


def test_old_gen_store_dirties_card():
    vm = JavaVM(VMConfig(heap_size=gb(4)))
    holder = vm.allocate(1024)
    vm.roots.add(holder)
    vm.minor_gc()
    vm.minor_gc()
    assert holder.space is SpaceId.OLD
    young = vm.allocate(64)
    before = vm.heap.card_table.dirty_count
    vm.write_ref(holder, young)
    assert vm.heap.card_table.dirty_count > before


def test_young_store_does_not_dirty_card():
    vm = JavaVM(VMConfig(heap_size=gb(4)))
    a, b = vm.allocate(64), vm.allocate(64)
    vm.write_ref(a, b)
    assert vm.heap.card_table.dirty_count == 0


def test_barrier_counts():
    vm = JavaVM(VMConfig(heap_size=gb(4)))
    a, b = vm.allocate(64), vm.allocate(64)
    for _ in range(10):
        vm.write_ref(a, b)
    assert vm.barrier.barrier_count == 10


def test_teraheap_range_check_costs_extra():
    plain = JavaVM(VMConfig(heap_size=gb(4)))
    th = JavaVM(
        VMConfig(
            heap_size=gb(4),
            teraheap=TeraHeapConfig(
                enabled=True, h2_size=gb(32), region_size=16 * KiB
            ),
        )
    )
    for vm in (plain, th):
        a, b = vm.allocate(64), vm.allocate(64)
        snap = vm.clock.snapshot()
        vm.write_ref(a, b)
        vm._delta = snap.delta(vm.clock)["other"]
    assert th._delta > plain._delta


def test_barrier_overhead_within_paper_bound():
    """Section 4: <=3% on DaCapo-style pointer churn; zero when off."""
    result = barrier_exp.run(updates=4000)
    assert 0.0 <= result.overhead <= 0.03
    assert result.teraheap_barriers == result.baseline_barriers
