"""Parallel Scavenge semantics: scavenge, promotion, mark-compact, cards."""

import pytest

from repro import JavaVM, VMConfig, gb
from repro.clock import Bucket
from repro.heap.object_model import SpaceId


@pytest.fixture
def vm():
    return JavaVM(VMConfig(heap_size=gb(8), page_cache_size=gb(2)))


def test_minor_gc_reclaims_garbage(vm):
    for _ in range(50):
        vm.allocate(4096)  # unrooted garbage
    before = vm.heap.eden.used
    vm.minor_gc()
    assert vm.heap.eden.used == 0
    cycle = vm.collector.stats.cycles[-1]
    assert cycle.kind == "minor"
    assert cycle.reclaimed_bytes >= before


def test_minor_gc_keeps_rooted_objects(vm):
    root = vm.allocate(4096, name="root")
    vm.roots.add(root)
    vm.minor_gc()
    assert root.space in (SpaceId.FROM, SpaceId.OLD)


def test_minor_gc_traces_references(vm):
    child = vm.allocate(2048)
    root = vm.allocate(64, refs=[child])
    vm.roots.add(root)
    vm.minor_gc()
    assert child.space is not SpaceId.FREED


def test_dead_objects_marked_freed(vm):
    dead = vm.allocate(2048)
    vm.minor_gc()
    assert dead.space is SpaceId.FREED


def test_survivors_age_and_promote(vm):
    root = vm.allocate(4096)
    vm.roots.add(root)
    vm.minor_gc()
    assert root.space is SpaceId.FROM
    assert root.age == 1
    vm.minor_gc()
    # tenuring threshold is 2: promoted on the second survival
    assert root.space is SpaceId.OLD


def test_old_to_young_reference_via_card_table(vm):
    """An old object's reference to a young object must keep it alive."""
    holder = vm.allocate(4096)
    vm.roots.add(holder)
    vm.minor_gc()
    vm.minor_gc()  # holder now old
    assert holder.space is SpaceId.OLD
    young = vm.allocate(1024)
    vm.write_ref(holder, young)  # barrier dirties the card
    vm.roots.remove(holder)  # not a root anymore, but old gen isn't swept
    vm.minor_gc()
    assert young.space is not SpaceId.FREED


def test_minor_gc_charges_minor_bucket(vm):
    vm.allocate(4096)
    vm.minor_gc()
    assert vm.clock.total(Bucket.MINOR_GC) > 0


def test_major_gc_compacts_into_old(vm):
    root = vm.allocate(4096)
    vm.roots.add(root)
    vm.major_gc()
    assert root.space is SpaceId.OLD
    cycle = vm.collector.stats.cycles[-1]
    assert cycle.kind == "major"
    assert set(cycle.phases) == {"marking", "precompact", "adjust", "compact"}


def test_major_gc_reclaims_old_garbage(vm):
    junk = [vm.allocate(4096) for _ in range(10)]
    keep = vm.allocate(4096)
    vm.roots.add(keep)
    vm.minor_gc()
    vm.minor_gc()  # promote everything live... junk dies in first minor
    vm.major_gc()
    assert keep.space is SpaceId.OLD
    for o in junk:
        assert o.space is SpaceId.FREED


def test_major_gc_address_order_preserved(vm):
    """Sliding compaction: surviving old objects keep their relative order."""
    objs = []
    for i in range(5):
        o = vm.allocate(2048, name=f"o{i}")
        vm.roots.add(o)
        objs.append(o)
    vm.major_gc()
    addresses = [o.address for o in objs]
    vm.major_gc()
    assert [o.address for o in objs] == addresses  # stable prefix untouched


def test_major_gc_charges_major_bucket(vm):
    vm.allocate(4096)
    vm.major_gc()
    assert vm.clock.total(Bucket.MAJOR_GC) > 0


def test_cycle_records_occupancy(vm):
    root = vm.allocate(4096)
    vm.roots.add(root)
    vm.major_gc()
    cycle = vm.collector.stats.cycles[-1]
    assert 0 <= cycle.old_occupancy_after <= 1


def test_gc_stats_aggregation(vm):
    vm.allocate(4096)
    vm.minor_gc()
    vm.major_gc()
    stats = vm.collector.stats
    assert stats.minor_count == 1
    assert stats.major_count == 1
    assert stats.total_time("minor") > 0
    assert stats.mean_time("major") > 0


def test_allocation_triggers_gc_when_eden_full(vm):
    size = 64 * 1024
    count = vm.heap.eden.capacity // size + 5
    for _ in range(count):
        vm.allocate(size)
    assert vm.collector.stats.minor_count >= 1


def test_ps11_major_parallelism_faster():
    results = {}
    for collector in ("ps", "ps11"):
        vm = JavaVM(VMConfig(heap_size=gb(8), collector=collector))
        roots = [vm.allocate(4096) for _ in range(100)]
        for r in roots:
            vm.roots.add(r)
        snap = vm.clock.snapshot()
        vm.major_gc()
        results[collector] = snap.delta(vm.clock)["major_gc"]
    assert results["ps11"] < results["ps"]


def test_live_exceeding_heap_raises_oom():
    from repro.errors import OutOfMemoryError

    vm = JavaVM(VMConfig(heap_size=gb(4)))
    with pytest.raises(OutOfMemoryError):
        kept = []
        for _ in range(10000):
            o = vm.allocate(64 * 1024)
            vm.roots.add(o)
            kept.append(o)
