"""Experiment drivers: quick smoke of every figure/table harness."""

import pytest

from repro.experiments import (
    barrier,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    table5,
)
from repro.experiments.configs import (
    GIRAPH_WORKLOADS_TABLE4,
    SPARK_WORKLOADS_TABLE3,
)
from repro.experiments.runner import run_giraph_workload, run_spark_workload


def test_configs_cover_all_paper_workloads():
    assert set(SPARK_WORKLOADS_TABLE3) == {
        "PR", "CC", "SSSP", "SVD", "TR", "LR", "LgR", "SVM", "BC", "RL",
    }
    assert set(GIRAPH_WORKLOADS_TABLE4) == {"PR", "CDLP", "WCC", "BFS", "SSSP"}


def test_table5_matches_paper():
    results = table5.run()
    for size_mb, measured in results.items():
        assert measured == pytest.approx(
            table5.PAPER_TABLE5[size_mb], rel=0.25
        )
    assert "417" in table5.format_results(results)


def test_barrier_overhead_driver():
    r = barrier.run(updates=2000)
    assert r.overhead <= 0.03


def test_fig06_spark_th_beats_sd():
    results = fig06.run_spark(workloads=["SVD"], scale=0.4)
    rows = results["SVD"]
    sd = [r for r in rows if r.system == "spark-sd" and not r.oom]
    th = [r for r in rows if r.system == "teraheap" and not r.oom]
    assert sd and th
    # Best TH beats best SD (the Figure 6 headline).
    assert min(t.total for t in th) < min(s.total for s in sd)
    assert "SVD" in fig06.format_results(results)


def test_fig06_giraph_th_beats_ooc():
    results = fig06.run_giraph(workloads=["BFS"])
    rows = results["BFS"]
    ooc = [r for r in rows if r.system == "giraph-ooc" and not r.oom]
    th = [r for r in rows if r.system == "giraph-th" and not r.oom]
    assert ooc and th
    assert min(t.total for t in th) < min(o.total for o in ooc)


def test_fig07_gc_timeline_shape():
    timelines = fig07.run(scale=0.4)
    by_system = {t.system: t for t in timelines}
    sd = by_system["spark-sd"]
    th = by_system["teraheap"]
    # TeraHeap: fewer majors, each costlier (device compaction I/O).
    assert len(th.major_cycles) <= len(sd.major_cycles)
    assert th.mean_major > sd.mean_major
    # Minor GC total drops under TeraHeap (fewer cards to scan).
    assert th.total_minor < sd.total_minor
    assert sd.occupancy_series()


def test_fig08_g1_ooms_on_humongous_workload():
    results = fig08.run(workloads=["SVM"], scale=0.3)
    rows = {r.system: r for r in results["SVM"]}
    assert rows["spark-g1"].oom
    assert not rows["spark-sd11"].oom
    assert not rows["teraheap"].oom
    assert rows["teraheap"].total < rows["spark-sd11"].total


def test_fig09_hint_ablation():
    pairs = fig09.run_hint_ablation(workloads=["WCC"])
    no_hint, with_hint = pairs["WCC"]
    assert with_hint.total < no_hint.total  # the hint wins (Fig 9a)
    assert "WCC" in fig09.format_pairs(pairs)


def test_fig10_region_cdfs():
    results = fig10.run(workloads=["PR"], region_sizes_mb=[16])
    cdf = results["PR"][0]
    assert cdf.allocated_regions > 0
    assert 0 <= cdf.reclaimed_fraction <= 1
    fractions = cdf.live_object_fractions()
    assert fractions == sorted(fractions)
    assert all(0 <= f <= 1 for f in fractions)
    # PR reclaims many regions (dead message stores).
    assert cdf.reclaimed_fraction > 0.2


def test_fig11_card_sweep_improves_with_larger_segments():
    results = fig11.run_card_segment_sweep(
        workloads=["PR"], segment_sizes=[512, 16384]
    )
    per_size = results["PR"]
    assert per_size[16384] < per_size[512]  # Fig 11a direction


def test_fig11_major_phases():
    results = fig11.run_major_phase_breakdown(workloads=["BFS"])
    ooc = results["BFS"]["giraph-ooc"]
    th = results["BFS"]["giraph-th"]
    assert sum(th.values()) < sum(ooc.values())  # TH majors cheaper overall
    assert set(ooc) >= {"marking", "compact"}


def test_fig12_sd_panel():
    pairs = fig12.run_panel("spark-sd", workloads=["SVD"], scale=0.3)
    base, th = pairs["SVD"]
    assert th.total < base.total


def test_fig13_thread_scaling_directions():
    results = fig13.run_thread_scaling(scale=0.25, threads=[8, 16])
    lr = results["LR"]
    sd8, sd16 = lr["spark-sd"][8], lr["spark-sd"][16]
    th8, th16 = lr["teraheap"][8], lr["teraheap"][16]
    # Spark-SD stalls (GC pressure grows); TeraHeap keeps scaling.
    assert th16.total < th8.total
    assert (sd16.total / sd8.total) > (th16.total / th8.total)


def test_runner_oom_is_captured_not_raised():
    cfg = SPARK_WORKLOADS_TABLE3["SVM"]
    result = run_spark_workload(
        "SVM", "spark-sd", cfg.sd_drams[0], cfg, scale=0.3
    )
    assert result.oom  # smallest DRAM point OOMs, as in Figure 6


def test_runner_giraph_returns_vm_and_job():
    cfg = GIRAPH_WORKLOADS_TABLE4["BFS"]
    result, vm, job = run_giraph_workload(
        "BFS", "giraph-th", cfg.drams[-1], cfg
    )
    assert not result.oom
    assert job.supersteps_run > 0
    assert result.extras["h2_regions_allocated"] > 0
