"""G1: regions, humongous allocation, fragmentation, collections."""

import pytest

from repro import JavaVM, OutOfMemoryError, VMConfig, gb
from repro.clock import Bucket
from repro.config import ConfigError, CostModel, G1Config
from repro.gc.g1 import G1Heap, RegionState
from repro.heap.object_model import HeapObject, SpaceId
from repro.units import KiB


def make_vm(heap_gb=4, region_size=32 * KiB):
    return JavaVM(
        VMConfig(
            heap_size=gb(heap_gb),
            collector="g1",
            g1=G1Config(region_size=region_size),
        )
    )


class TestG1Heap:
    def test_region_count(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        assert heap.num_regions == heap.capacity // heap.region_size

    def test_small_allocation_in_eden_region(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        o = HeapObject(1024)
        assert heap.try_allocate(o)
        assert o.space is SpaceId.EDEN
        assert heap.regions[o.region_id].state is RegionState.EDEN

    def test_humongous_threshold(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        assert heap.is_humongous(heap.region_size // 2 + 1)
        assert not heap.is_humongous(heap.region_size // 2)

    def test_humongous_takes_contiguous_run(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        big = HeapObject(heap.region_size + 100)
        assert heap.try_allocate(big)
        head = heap.regions[big.region_id]
        assert head.state is RegionState.HUMONGOUS_START
        assert (
            heap.regions[head.index + 1].state is RegionState.HUMONGOUS_CONT
        )
        assert heap.humongous_waste > 0

    def test_humongous_waste_counts_toward_usage(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        big = HeapObject(heap.region_size + 100)
        heap.try_allocate(big)
        assert heap.used() >= 2 * heap.region_size

    def test_free_humongous_run(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        big = HeapObject(heap.region_size + 100)
        heap.try_allocate(big)
        head = heap.regions[big.region_id]
        heap.free_humongous_run(head)
        assert head.state is RegionState.FREE
        assert heap.regions[head.index + 1].state is RegionState.FREE

    def test_eden_budget_limits_allocation(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        size = heap.region_size // 2
        allocated = 0
        while heap.try_allocate(HeapObject(size)):
            allocated += 1
        # Stops at roughly the young target, not at heap exhaustion.
        assert allocated <= heap.young_target * 2 + 2


class TestG1Collector:
    def test_young_collection_reclaims_garbage(self):
        vm = make_vm()
        keep = vm.allocate(1024)
        vm.roots.add(keep)
        for _ in range(200):
            vm.allocate(8 * KiB)
        assert vm.collector.stats.minor_count > 0
        assert keep.space is not SpaceId.FREED

    def test_survivors_eventually_promote(self):
        vm = make_vm()
        keep = vm.allocate(1024)
        vm.roots.add(keep)
        vm.minor_gc()
        vm.minor_gc()
        assert keep.space is SpaceId.OLD

    def test_old_to_young_remset(self):
        vm = make_vm()
        holder = vm.allocate(1024)
        vm.roots.add(holder)
        vm.minor_gc()
        vm.minor_gc()
        assert holder.space is SpaceId.OLD
        young = vm.allocate(512)
        vm.write_ref(holder, young)
        vm.roots.remove(holder)
        vm.minor_gc()
        assert young.space is not SpaceId.FREED

    def test_mixed_collection_frees_dead_old_regions(self):
        vm = make_vm()
        junk = [vm.allocate(8 * KiB) for _ in range(50)]
        for o in junk:
            vm.roots.add(o)
        vm.minor_gc()
        vm.minor_gc()  # promote
        for o in junk:
            vm.roots.remove(o)
        vm.major_gc()
        free = len(vm.heap.free_regions())
        assert free > vm.heap.num_regions // 2

    def test_humongous_fragmentation_oom(self):
        """Long-lived humongous objects exhaust contiguous space (the
        paper's SVM/BC/RL failure mode)."""
        vm = make_vm(heap_gb=2)
        hum_size = vm.heap.region_size + vm.heap.region_size // 2
        with pytest.raises(OutOfMemoryError):
            while True:
                o = vm.allocate(hum_size)
                vm.roots.add(o)

    def test_dead_humongous_reclaimed_eagerly(self):
        vm = make_vm()
        big = vm.allocate(vm.heap.region_size + 100)
        vm.roots.add(big)
        vm.roots.remove(big)
        vm.major_gc()
        assert big.space is SpaceId.FREED

    def test_mixed_collection_is_incremental(self):
        """Garbage-first: a mixed collection evacuates only the emptiest
        old regions, leaving mostly-live regions untouched."""
        vm = make_vm()
        roots = [vm.allocate(8 * KiB) for _ in range(100)]
        for r in roots:
            vm.roots.add(r)
        vm.minor_gc()
        vm.minor_gc()  # promote everything (fully live old regions)
        addresses = {r.oid: r.address for r in roots}
        vm.major_gc()
        unmoved = sum(
            1 for r in roots if r.address == addresses[r.oid]
        )
        # Only up to the mixed-collection fraction of regions moves.
        assert unmoved >= len(roots) // 2


def marking_vm(gc_threads=8, resident=60, **g1_kwargs):
    """A G1 VM with a rooted resident set and a consumed warmup cycle."""
    vm = JavaVM(
        VMConfig(
            heap_size=gb(4),
            collector="g1",
            gc_threads=gc_threads,
            g1=G1Config(**g1_kwargs) if g1_kwargs else G1Config(),
        )
    )
    table = vm.roots.add(vm.allocate(16 * KiB))
    for _ in range(resident):
        vm.write_ref(table, vm.allocate(8 * KiB))
    vm.major_gc()  # consumes the setup-allocation overlap window
    return vm


def mark_phase_critical(cycle) -> float:
    return sum(
        rec["critical_s"]
        for rec in cycle.engine_phases
        if rec["phase"] == "g1-concurrent-mark"
    )


def run_major(vm):
    """vm.major_gc() plus the cycle it recorded (the VM wrapper
    returns None)."""
    vm.major_gc()
    return vm.collector.stats.cycles[-1]


class TestConcurrentMarking:
    def test_mutator_heavy_cycle_hides_a_majority_of_marking(self):
        vm = marking_vm()
        vm.compute(50_000)  # plenty of Bucket.OTHER to race against
        cycle = run_major(vm)
        critical = mark_phase_critical(cycle)
        assert critical > 0.0
        assert cycle.concurrent_hidden > 0.5 * critical
        stats = vm.collector.stats
        assert stats.total_concurrent_hidden("major") >= (
            cycle.concurrent_hidden
        )

    def test_back_to_back_majors_hide_nothing(self):
        vm = marking_vm()
        vm.major_gc()  # drains whatever window remained
        cycle = run_major(vm)  # no mutator progress since the last cycle
        assert mark_phase_critical(cycle) > 0.0
        assert cycle.concurrent_hidden == 0.0

    def test_remark_is_a_pause_charged_to_major_gc(self):
        vm = marking_vm()
        vm.compute(50_000)
        major_before = vm.clock.total(Bucket.MAJOR_GC)
        cycle = run_major(vm)
        major_delta = vm.clock.total(Bucket.MAJOR_GC) - major_before
        # Hidden marking never lands in any bucket: the major bucket
        # only grows by the cycle's charged duration, remark included.
        assert major_delta == pytest.approx(cycle.duration)
        assert cycle.remark_pause > 0.0
        assert cycle.remark_pause <= cycle.duration
        assert vm.collector.stats.total_remark_pause("major") >= (
            cycle.remark_pause
        )

    def test_hidden_marking_shortens_the_pause(self):
        """The same heap shape pauses longer when there is no mutator
        window to hide the marking in."""
        idle = marking_vm()
        idle.major_gc()  # drain the window
        paused = run_major(idle)
        busy = marking_vm()
        busy.major_gc()
        busy.compute(50_000)
        hidden = run_major(busy)
        assert hidden.duration < paused.duration
        assert hidden.concurrent_hidden > 0.0

    def test_concurrent_pool_is_a_quarter_of_the_parallel_pool(self):
        vm = marking_vm(gc_threads=8)
        cycle = run_major(vm)
        recs = [
            r for r in cycle.engine_phases
            if r["phase"] == "g1-concurrent-mark"
        ]
        assert recs and all(r["workers"] == 2 for r in recs)

    def test_concurrent_divisor_is_configurable(self):
        vm = marking_vm(gc_threads=8, concurrent_divisor=8)
        cycle = run_major(vm)
        recs = [
            r for r in cycle.engine_phases
            if r["phase"] == "g1-concurrent-mark"
        ]
        assert recs and all(r["workers"] == 1 for r in recs)

    def test_remark_fraction_zero_still_rescans_roots(self):
        vm = marking_vm(remark_fraction=0.0)
        cycle = run_major(vm)
        assert cycle.remark_pause > 0.0
        recs = {r["phase"] for r in cycle.engine_phases}
        assert "g1-remark" in recs

    def test_g1_config_validates_concurrent_knobs(self):
        with pytest.raises(ConfigError):
            G1Config(concurrent_divisor=0)
        with pytest.raises(ConfigError):
            G1Config(remark_fraction=1.0)
        with pytest.raises(ConfigError):
            G1Config(remark_fraction=-0.1)


class TestAccountingFixes:
    """The three attribution bugs: evacuation-failure bucket, full-GC
    scan factor, short-circuited evacuations."""

    def _exhausted_vm(self):
        """A tiny heap one scavenge away from evacuation failure: live
        eden objects (some tenured) and zero free regions."""
        vm = JavaVM(
            VMConfig(
                heap_size=16 * 32 * KiB,
                collector="g1",
                g1=G1Config(region_size=32 * KiB),
            )
        )
        threshold = vm.config.tenuring_threshold
        for i in range(4):
            obj = vm.roots.add(vm.allocate(4 * KiB, name=f"live-{i}"))
            if i % 2:
                obj.age = threshold  # promotes on the next scavenge
        for region in vm.heap.regions:
            if region.state is RegionState.FREE:
                region.state = RegionState.OLD
        return vm

    def test_evacuation_failure_full_gc_charged_to_major(self):
        vm = self._exhausted_vm()
        minor_before = vm.clock.total(Bucket.MINOR_GC)
        major_before = vm.clock.total(Bucket.MAJOR_GC)
        vm.minor_gc()
        cycle = vm.collector.stats.cycles[-1]
        assert vm.collector.full_collections == 1
        minor_delta = vm.clock.total(Bucket.MINOR_GC) - minor_before
        major_delta = vm.clock.total(Bucket.MAJOR_GC) - major_before
        # The fallback full collection is major-GC work: the scavenge
        # cycle and the MINOR_GC bucket exclude it entirely.
        assert major_delta > 0.0
        assert minor_delta == pytest.approx(cycle.duration)
        events = {name: dur for _, name, dur in vm.clock.events}
        assert "evacuation_failure" in events
        assert events["full_gc"] == pytest.approx(major_delta)

    def test_evacuation_failure_attempts_both_evacuations(self):
        vm = self._exhausted_vm()
        calls = []
        original = vm.collector._evacuate

        def spy(objects, state):
            calls.append((state, len(objects)))
            return original(objects, state)

        vm.collector._evacuate = spy
        vm.minor_gc()
        # Survivor evacuation fails, but the promotion copy still runs
        # (real G1 pays for both before declaring the scavenge failed).
        assert calls[0] == (RegionState.SURVIVOR, 2)
        assert calls[1] == (RegionState.OLD, 2)

    def _full_mark_serial(self, scan_factor):
        vm = JavaVM(VMConfig(heap_size=gb(4), collector="g1"))
        obj = vm.roots.add(vm.allocate(1024))
        obj.scan_factor = scan_factor
        collector = vm.collector
        collector.begin_parallel_cycle()
        with vm.clock.context(Bucket.MAJOR_GC):
            collector._full_collection()
        recs = [
            r for r in collector.engine.phase_log
            if r["phase"] == "g1-full-mark"
        ]
        assert recs
        return recs[-1]["serial_s"]

    def test_full_collection_mark_cost_includes_scan_factor(self):
        base = self._full_mark_serial(1)
        heavy = self._full_mark_serial(4)
        # Only the root object's scan factor differs: the full-GC mark
        # must charge the extra 3 visit-costs it used to drop.
        assert heavy - base == pytest.approx(3 * CostModel().gc_visit_cost)
