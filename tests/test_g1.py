"""G1: regions, humongous allocation, fragmentation, collections."""

import pytest

from repro import JavaVM, OutOfMemoryError, VMConfig, gb
from repro.config import G1Config
from repro.gc.g1 import G1Heap, RegionState
from repro.heap.object_model import HeapObject, SpaceId
from repro.units import KiB


def make_vm(heap_gb=4, region_size=32 * KiB):
    return JavaVM(
        VMConfig(
            heap_size=gb(heap_gb),
            collector="g1",
            g1=G1Config(region_size=region_size),
        )
    )


class TestG1Heap:
    def test_region_count(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        assert heap.num_regions == heap.capacity // heap.region_size

    def test_small_allocation_in_eden_region(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        o = HeapObject(1024)
        assert heap.try_allocate(o)
        assert o.space is SpaceId.EDEN
        assert heap.regions[o.region_id].state is RegionState.EDEN

    def test_humongous_threshold(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        assert heap.is_humongous(heap.region_size // 2 + 1)
        assert not heap.is_humongous(heap.region_size // 2)

    def test_humongous_takes_contiguous_run(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        big = HeapObject(heap.region_size + 100)
        assert heap.try_allocate(big)
        head = heap.regions[big.region_id]
        assert head.state is RegionState.HUMONGOUS_START
        assert (
            heap.regions[head.index + 1].state is RegionState.HUMONGOUS_CONT
        )
        assert heap.humongous_waste > 0

    def test_humongous_waste_counts_toward_usage(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        big = HeapObject(heap.region_size + 100)
        heap.try_allocate(big)
        assert heap.used() >= 2 * heap.region_size

    def test_free_humongous_run(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        big = HeapObject(heap.region_size + 100)
        heap.try_allocate(big)
        head = heap.regions[big.region_id]
        heap.free_humongous_run(head)
        assert head.state is RegionState.FREE
        assert heap.regions[head.index + 1].state is RegionState.FREE

    def test_eden_budget_limits_allocation(self):
        heap = G1Heap(VMConfig(heap_size=gb(4), collector="g1"))
        size = heap.region_size // 2
        allocated = 0
        while heap.try_allocate(HeapObject(size)):
            allocated += 1
        # Stops at roughly the young target, not at heap exhaustion.
        assert allocated <= heap.young_target * 2 + 2


class TestG1Collector:
    def test_young_collection_reclaims_garbage(self):
        vm = make_vm()
        keep = vm.allocate(1024)
        vm.roots.add(keep)
        for _ in range(200):
            vm.allocate(8 * KiB)
        assert vm.collector.stats.minor_count > 0
        assert keep.space is not SpaceId.FREED

    def test_survivors_eventually_promote(self):
        vm = make_vm()
        keep = vm.allocate(1024)
        vm.roots.add(keep)
        vm.minor_gc()
        vm.minor_gc()
        assert keep.space is SpaceId.OLD

    def test_old_to_young_remset(self):
        vm = make_vm()
        holder = vm.allocate(1024)
        vm.roots.add(holder)
        vm.minor_gc()
        vm.minor_gc()
        assert holder.space is SpaceId.OLD
        young = vm.allocate(512)
        vm.write_ref(holder, young)
        vm.roots.remove(holder)
        vm.minor_gc()
        assert young.space is not SpaceId.FREED

    def test_mixed_collection_frees_dead_old_regions(self):
        vm = make_vm()
        junk = [vm.allocate(8 * KiB) for _ in range(50)]
        for o in junk:
            vm.roots.add(o)
        vm.minor_gc()
        vm.minor_gc()  # promote
        for o in junk:
            vm.roots.remove(o)
        vm.major_gc()
        free = len(vm.heap.free_regions())
        assert free > vm.heap.num_regions // 2

    def test_humongous_fragmentation_oom(self):
        """Long-lived humongous objects exhaust contiguous space (the
        paper's SVM/BC/RL failure mode)."""
        vm = make_vm(heap_gb=2)
        hum_size = vm.heap.region_size + vm.heap.region_size // 2
        with pytest.raises(OutOfMemoryError):
            while True:
                o = vm.allocate(hum_size)
                vm.roots.add(o)

    def test_dead_humongous_reclaimed_eagerly(self):
        vm = make_vm()
        big = vm.allocate(vm.heap.region_size + 100)
        vm.roots.add(big)
        vm.roots.remove(big)
        vm.major_gc()
        assert big.space is SpaceId.FREED

    def test_mixed_collection_is_incremental(self):
        """Garbage-first: a mixed collection evacuates only the emptiest
        old regions, leaving mostly-live regions untouched."""
        vm = make_vm()
        roots = [vm.allocate(8 * KiB) for _ in range(100)]
        for r in roots:
            vm.roots.add(r)
        vm.minor_gc()
        vm.minor_gc()  # promote everything (fully live old regions)
        addresses = {r.oid: r.address for r in roots}
        vm.major_gc()
        unmoved = sum(
            1 for r in roots if r.address == addresses[r.oid]
        )
        # Only up to the mixed-collection fraction of regions moves.
        assert unmoved >= len(roots) // 2
