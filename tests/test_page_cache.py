"""Page cache: LRU behaviour, writeback, write-through, invalidation."""

import pytest

from repro.clock import Clock
from repro.devices.nvme import NVMeSSD
from repro.devices.page_cache import PageCache, _count_runs


@pytest.fixture
def cache():
    clock = Clock()
    device = NVMeSSD(clock)
    return PageCache(device, capacity=16 * 4096), device


def test_miss_then_hit(cache):
    pc, dev = cache
    hits, misses = pc.access([1, 2, 3])
    assert (hits, misses) == (0, 3)
    hits, misses = pc.access([1, 2, 3])
    assert (hits, misses) == (3, 0)


def test_miss_reads_device(cache):
    pc, dev = cache
    pc.access([1, 2])
    assert dev.traffic.bytes_read == 2 * 4096


def test_hit_ratio(cache):
    pc, _ = cache
    pc.access([1])
    pc.access([1])
    assert pc.hit_ratio == pytest.approx(0.5)


def test_lru_eviction(cache):
    pc, _ = cache
    pc.access(range(16))
    pc.access([100])  # evicts page 0
    assert 0 not in pc
    assert 100 in pc
    assert pc.evictions == 1


def test_lru_touch_prevents_eviction(cache):
    pc, _ = cache
    pc.access(range(16))
    pc.access([0])  # refresh page 0
    pc.access([100])  # evicts page 1, not 0
    assert 0 in pc
    assert 1 not in pc


def test_dirty_eviction_writes_back(cache):
    pc, dev = cache
    pc.access([0], write=True)
    pc.access(range(1, 17))  # push page 0 out
    assert pc.writebacks == 1
    assert dev.traffic.bytes_written == 4096


def test_clean_eviction_no_writeback(cache):
    pc, dev = cache
    pc.access([0])
    pc.access(range(1, 17))
    assert dev.traffic.bytes_written == 0


def test_write_through_populates_clean(cache):
    pc, dev = cache
    pc.write_through([5, 6])
    assert dev.traffic.bytes_written == 2 * 4096
    # Now resident and clean: reading hits, evicting writes nothing more.
    hits, misses = pc.access([5, 6])
    assert (hits, misses) == (2, 0)


def test_invalidate_drops_without_writeback(cache):
    pc, dev = cache
    pc.access([7], write=True)
    pc.invalidate([7])
    assert 7 not in pc
    assert dev.traffic.bytes_written == 0


def test_flush_writes_all_dirty(cache):
    pc, dev = cache
    pc.access([1, 2], write=True)
    pc.access([3])
    flushed = pc.flush()
    assert flushed == 2
    assert dev.traffic.bytes_written == 2 * 4096
    assert pc.flush() == 0  # now clean


def test_capacity_must_hold_a_page():
    with pytest.raises(ValueError):
        PageCache(NVMeSSD(Clock()), capacity=100)


def test_count_runs():
    assert _count_runs([1, 2, 3]) == 1
    assert _count_runs([1, 3, 5]) == 3
    assert _count_runs([1, 2, 5, 6, 9]) == 3
    assert _count_runs([]) == 1
