"""Message combiners and master aggregators."""

import pytest

from repro import JavaVM, VMConfig, gb
from repro.devices.nvme import NVMeSSD
from repro.frameworks.giraph import GiraphConf, GiraphMode, GiraphJob
from repro.frameworks.giraph.combiners import (
    AggregatorRegistry,
    COMBINERS,
    resolve_combiner,
)
from repro.frameworks.giraph.programs import PageRankProgram
from repro.workloads.generators import make_graph


@pytest.fixture
def graph():
    return make_graph(gb(2), num_vertices=200, avg_degree=6, seed=11)


def make_vm():
    return JavaVM(VMConfig(heap_size=gb(8), page_cache_size=gb(2)))


class TestCombinerResolution:
    def test_none_is_none(self):
        assert resolve_combiner(None) is None

    @pytest.mark.parametrize("name", sorted(COMBINERS))
    def test_builtins_resolve(self, name):
        combiner = resolve_combiner(name)
        assert combiner.name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_combiner("median")

    def test_combined_bytes_is_single_value(self):
        combiner = resolve_combiner("sum")
        assert combiner.combined_bytes(100, 96) == 96
        assert combiner.combined_bytes(0, 96) == 0


class TestCombinerEffect:
    def run_pr(self, combiner):
        vm = make_vm()
        conf = GiraphConf(
            mode=GiraphMode.OOC,
            device=NVMeSSD(vm.clock),
            combiner=combiner,
        )
        g = make_graph(gb(2), num_vertices=200, avg_degree=6, seed=11)
        job = GiraphJob(vm, conf, g)
        job.load_graph()
        job.run(PageRankProgram(g, iterations=3))
        return job, job.message_store_bytes

    def test_combiner_shrinks_message_stores(self):
        _, plain = self.run_pr(None)
        _, combined = self.run_pr("sum")
        assert combined < plain

    def test_same_supersteps_either_way(self):
        job_a, _ = self.run_pr(None)
        job_b, _ = self.run_pr("sum")
        assert job_a.supersteps_run == job_b.supersteps_run


class TestAggregators:
    def test_bsp_visibility(self):
        vm = make_vm()
        master = vm.allocate(256, name="master")
        vm.roots.add(master)
        reg = AggregatorRegistry(vm, master)
        reg.aggregate("sum", 2.0)
        reg.aggregate("sum", 3.0)
        assert reg.get("sum") == 0.0  # not visible until the barrier
        reg.barrier()
        assert reg.get("sum") == 5.0
        reg.barrier()
        assert reg.get("sum") == 0.0  # one superstep of lifetime

    def test_value_objects_released_at_barrier(self):
        vm = make_vm()
        master = vm.allocate(256, name="master")
        vm.roots.add(master)
        reg = AggregatorRegistry(vm, master)
        reg.aggregate("x", 1.0)
        assert len(master.refs) == 1
        reg.barrier()
        assert len(master.refs) == 0

    def test_job_tracks_active_vertices(self):
        vm = make_vm()
        conf = GiraphConf(mode=GiraphMode.OOC, device=NVMeSSD(vm.clock))
        g = make_graph(gb(2), num_vertices=100, avg_degree=4, seed=3)
        job = GiraphJob(vm, conf, g)
        job.load_graph()
        job.run(PageRankProgram(g, iterations=2))
        # All vertices were active in the last completed superstep.
        assert job.aggregators.get("active_vertices") == g.num_vertices
