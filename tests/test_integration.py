"""End-to-end integration: full framework runs with invariant checks."""

import pytest

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.devices.nvme import NVMeSSD
from repro.frameworks.giraph import GiraphConf, GiraphMode
from repro.frameworks.giraph.workloads import make_giraph_graph, run_giraph
from repro.frameworks.spark import CachePolicy, SparkConf, SparkContext
from repro.frameworks.spark.workloads import SPARK_WORKLOADS
from repro.heap.object_model import SpaceId
from repro.units import KiB


def reachable_intact(vm):
    seen = set()
    stack = list(vm.roots)
    while stack:
        obj = stack.pop()
        if obj.oid in seen:
            continue
        seen.add(obj.oid)
        assert obj.space is not SpaceId.FREED
        stack.extend(obj.refs)
    return len(seen)


def test_spark_pagerank_end_to_end_teraheap():
    vm = JavaVM(
        VMConfig(
            heap_size=gb(16),
            teraheap=TeraHeapConfig(
                enabled=True, h2_size=gb(256), region_size=64 * KiB
            ),
            page_cache_size=gb(8),
        )
    )
    ctx = SparkContext(
        vm,
        SparkConf(
            cache_policy=CachePolicy.TERAHEAP,
            offheap_device=NVMeSSD(vm.clock),
        ),
    )
    SPARK_WORKLOADS["PR"](ctx, gb(20), scale=0.5)
    assert reachable_intact(vm) > 0
    assert vm.h2.objects_moved > 0
    # Accounting is consistent: every bucket non-negative, totals add up.
    breakdown = vm.breakdown()
    assert all(v >= 0 for v in breakdown.values())
    assert vm.elapsed() == pytest.approx(sum(breakdown.values()))


def test_spark_all_policies_complete_same_workload():
    totals = {}
    for policy, th in [
        (CachePolicy.SD, False),
        (CachePolicy.MO, False),
        (CachePolicy.TERAHEAP, True),
    ]:
        thc = (
            TeraHeapConfig(enabled=True, h2_size=gb(256), region_size=64 * KiB)
            if th
            else TeraHeapConfig()
        )
        vm = JavaVM(
            VMConfig(heap_size=gb(24), teraheap=thc, page_cache_size=gb(8))
        )
        ctx = SparkContext(
            vm,
            SparkConf(cache_policy=policy, offheap_device=NVMeSSD(vm.clock)),
        )
        SPARK_WORKLOADS["CC"](ctx, gb(16), scale=0.4)
        reachable_intact(vm)
        totals[policy] = vm.elapsed()
    assert all(t > 0 for t in totals.values())


def test_giraph_ooc_and_teraheap_complete_with_consistent_results():
    graph = make_giraph_graph(gb(12), seed=5)
    steps = {}
    for mode, th in [(GiraphMode.OOC, False), (GiraphMode.TERAHEAP, True)]:
        thc = (
            TeraHeapConfig(enabled=True, h2_size=gb(256), region_size=16 * KiB)
            if th
            else TeraHeapConfig()
        )
        vm = JavaVM(
            VMConfig(heap_size=gb(12), teraheap=thc, page_cache_size=gb(4))
        )
        conf = GiraphConf(mode=mode, device=NVMeSSD(vm.clock))
        job = run_giraph(vm, conf, graph, "WCC")
        reachable_intact(vm)
        steps[mode] = job.supersteps_run
    # The algorithm converges after the same number of supersteps no
    # matter which memory system runs it.
    assert steps[GiraphMode.OOC] == steps[GiraphMode.TERAHEAP]


def test_device_traffic_conservation():
    """Bytes written to H2 >= bytes of objects moved (page rounding)."""
    vm = JavaVM(
        VMConfig(
            heap_size=gb(8),
            teraheap=TeraHeapConfig(
                enabled=True, h2_size=gb(64), region_size=16 * KiB
            ),
            page_cache_size=gb(4),
        )
    )
    with vm.roots.frame() as frame:
        children = [frame.push(vm.allocate(4 * KiB)) for _ in range(50)]
        root = vm.allocate(512, refs=children)
    vm.roots.add(root)
    vm.h2_tag_root(root, "data")
    vm.h2_move("data")
    vm.major_gc()
    written = vm.h2.device.traffic.bytes_written
    assert written >= vm.h2.bytes_moved * 0.9


def test_clock_monotonicity_through_workload():
    vm = JavaVM(VMConfig(heap_size=gb(8)))
    ctx = SparkContext(
        vm,
        SparkConf(
            cache_policy=CachePolicy.SD, offheap_device=NVMeSSD(vm.clock)
        ),
    )
    last = 0.0
    rdd = ctx.range_rdd(gb(4)).persist()
    for _ in range(3):
        rdd.foreach_cached(8)
        now = vm.elapsed()
        assert now >= last
        last = now
