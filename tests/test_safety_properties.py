"""GC safety: property-based and randomized mutator-vs-collector tests.

The central memory-safety invariant of the whole design (Section 3.3):
*no object reachable from the roots is ever reclaimed*, regardless of the
interleaving of allocations, reference updates, H2 tagging/moves, and
collections — including lazy bulk region reclamation.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.heap.object_model import SpaceId
from repro.units import KiB


def reachable(vm):
    """Objects reachable from the simulated roots."""
    seen = {}
    stack = list(vm.roots)
    while stack:
        obj = stack.pop()
        if obj.oid in seen:
            continue
        seen[obj.oid] = obj
        stack.extend(obj.refs)
    return seen.values()


def assert_no_reachable_freed(vm):
    for obj in reachable(vm):
        assert obj.space is not SpaceId.FREED, (
            f"reachable object #{obj.oid} ({obj.name}) was reclaimed"
        )


def make_th_vm(heap_gb=4):
    return JavaVM(
        VMConfig(
            heap_size=gb(heap_gb),
            teraheap=TeraHeapConfig(
                enabled=True,
                h2_size=gb(64),
                region_size=16 * KiB,
                high_threshold=0.7,
                low_threshold=0.4,
            ),
            page_cache_size=gb(2),
        )
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_mutator_never_loses_reachable_objects(seed):
    """Randomised workload against a TeraHeap VM; after every GC, the
    reachable set is intact."""
    rng = random.Random(seed)
    vm = make_th_vm()
    pinned = []
    label_counter = 0
    for step in range(120):
        action = rng.random()
        if action < 0.45:  # allocate, sometimes pin
            obj = vm.allocate(rng.randint(64, 8 * KiB))
            if rng.random() < 0.4:
                vm.roots.add(obj)
                pinned.append(obj)
        elif action < 0.65 and pinned:  # link two pinned objects
            src, dst = rng.choice(pinned), rng.choice(pinned)
            if src.space is not SpaceId.FREED and dst.space is not SpaceId.FREED:
                vm.write_ref(src, dst)
        elif action < 0.75 and pinned:  # unpin (make garbage)
            obj = pinned.pop(rng.randrange(len(pinned)))
            vm.roots.remove(obj)
        elif action < 0.85 and pinned:  # tag + move a group to H2
            obj = rng.choice(pinned)
            if obj.in_h1 and obj.label is None:
                label_counter += 1
                vm.h2_tag_root(obj, f"grp-{label_counter}")
                vm.h2_move(f"grp-{label_counter}")
        elif action < 0.93:
            vm.minor_gc()
            assert_no_reachable_freed(vm)
        else:
            vm.major_gc()
            assert_no_reachable_freed(vm)
    vm.major_gc()
    assert_no_reachable_freed(vm)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_h2_regions_reclaimed_only_when_dead(seed):
    """Whenever a region is reclaimed, none of its objects were reachable."""
    rng = random.Random(seed)
    vm = make_th_vm()
    groups = []
    for i in range(12):
        with vm.roots.frame() as frame:
            children = [
                frame.push(vm.allocate(rng.randint(512, 4 * KiB)))
                for _ in range(rng.randint(2, 8))
            ]
            root = vm.allocate(128, refs=children)
        vm.roots.add(root)
        vm.h2_tag_root(root, f"g{i}")
        vm.h2_move(f"g{i}")
        groups.append(root)
    vm.major_gc()
    # Drop a random subset, keep the rest.
    dropped = set()
    for root in groups:
        if rng.random() < 0.5:
            vm.roots.remove(root)
            dropped.add(root.oid)
    vm.major_gc()
    for root in groups:
        if root.oid in dropped:
            assert root.space is SpaceId.FREED
        else:
            assert root.space is SpaceId.H2
            for child in root.refs:
                assert child.space is SpaceId.H2
    assert_no_reachable_freed(vm)


def test_region_group_policy_is_safe_but_conservative():
    """Union-find groups must never reclaim a live region; they may keep
    dead ones (the Section 3.3 trade-off)."""
    for policy in ("deps", "groups"):
        vm = JavaVM(
            VMConfig(
                heap_size=gb(4),
                teraheap=TeraHeapConfig(
                    enabled=True,
                    h2_size=gb(64),
                    region_size=16 * KiB,
                    region_policy=policy,
                ),
                page_cache_size=gb(2),
            )
        )
        a = vm.allocate(4 * KiB, name="a")
        b = vm.allocate(4 * KiB, name="b")
        vm.roots.add(a)
        vm.roots.add(b)
        vm.h2_tag_root(a, "A")
        vm.h2_tag_root(b, "B")
        vm.h2_move("A")
        vm.h2_move("B")
        vm.major_gc()
        vm.write_ref(a, b)  # cross-region A -> B
        vm.roots.remove(a)
        vm.major_gc()
        # B stays reachable via... nothing (A is dead): under deps, both
        # die; under groups, both die too (whole group dead). Either way
        # the live root set is intact.
        assert_no_reachable_freed(vm)


def test_backward_ref_chain_survives_many_gcs():
    vm = make_th_vm()
    h1_target = vm.allocate(1024, is_metadata=True, name="h1-anchor")
    root = vm.allocate(128, refs=[h1_target], name="h2-root")
    vm.roots.add(root)
    vm.h2_tag_root(root, "chain")
    vm.h2_move("chain")
    vm.major_gc()
    assert root.space is SpaceId.H2
    assert h1_target.space is SpaceId.OLD
    for _ in range(5):
        vm.allocate(32 * KiB)  # churn
        vm.minor_gc()
        vm.major_gc()
    assert h1_target.space is SpaceId.OLD
    assert_no_reachable_freed(vm)
