"""Shared test helpers."""


def make_group(vm, count=20, size=2048, name="grp"):
    """Allocate a root key-object with ``count`` children, pinned as a root."""
    with vm.roots.frame() as frame:
        children = [
            frame.push(vm.allocate(size, name=f"{name}-{i}"))
            for i in range(count)
        ]
        root = vm.allocate(
            max(64, 8 * count), refs=children, name=f"{name}-root"
        )
    vm.roots.add(root)
    return root, children
