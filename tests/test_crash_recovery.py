"""Crash consistency: durable image, commit protocol, H2 recovery."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro import InvariantViolation, SimulatedCrash, UnrecoverableCrash
from repro.devices.durability import DurableImage, image_of
from repro.faults import FaultConfig
from repro.heap.object_model import HeapObject
from repro.teraheap.h2_heap import H2_BASE
from repro.teraheap.recovery import RegionJournalEntry, header_page
from repro.units import KiB, MiB
from repro.experiments.chaoskill import (
    CRASH_POINTS,
    Workload,
    final_report,
    make_vm,
    resume_phase,
)

SEED = 7


def committed_vm(policy="commit", phases=2, seed=SEED):
    """A VM that ran ``phases`` phases crash-free (so it has committed)."""
    vm = make_vm(policy)
    workload = Workload(vm, seed)
    for i in range(phases):
        workload.run_phase(i)
    return vm


def lift_image(vm):
    image = image_of(vm.h2.mapping)
    assert image is not None
    return image


# ======================================================================
# DurableImage semantics
# ======================================================================
def test_dirty_pages_are_not_durable_until_writeback():
    image = DurableImage()
    assert not image.is_durable(3)
    image.commit([3, 4])
    assert image.is_durable(3) and image.is_durable(4)
    image.tear(4)
    assert not image.is_durable(4)
    assert image.torn_in([3, 4]) == [4]
    # Re-committing a torn page heals it (the next write lands whole).
    image.commit([4])
    assert image.is_durable(4)


def test_torn_header_keeps_previous_journal_entry():
    image = DurableImage()
    page = header_page(0)
    entry_a = RegionJournalEntry(0, 1, "g0", 8, True, (), ((0, 8),))
    image.stage_journal(page, 0, entry_a)
    image.commit([page])
    assert image.journal_entry(0, 1) is entry_a
    # The next header update tears mid-write: the staged entry is lost
    # but the committed one survives (two-slot shadow write).
    entry_b = dataclasses.replace(entry_a, epoch=2)
    image.stage_journal(page, 0, entry_b)
    image.tear(page)
    assert image.journal_entry(0, 2) is None
    assert image.journal_entry(0, 1) is entry_a


def test_two_slot_journal_retains_previous_epoch():
    image = DurableImage()
    page = header_page(5)
    for epoch in (1, 2, 3):
        entry = RegionJournalEntry(5, epoch, "g", 8, True, (), ((0, 8),))
        image.stage_journal(page, 5, entry)
        image.commit([page])
    # Only the two newest slots survive.
    assert image.journal_entry(5, 1) is None
    assert image.journal_entry(5, 2) is not None
    assert image.journal_entry(5, 3) is not None


def test_superblock_tear_falls_back_to_previous_commit():
    image = DurableImage()
    image.commit_superblock(4, [1, 2], note="phase:0")
    image.tear_superblock()
    assert image.committed_epoch == 4
    assert image.manifest == (1, 2)
    assert image.checkpoint_note == "phase:0"
    assert image.superblock_tears == 1


def test_digest_is_deterministic_and_covers_state():
    image = DurableImage()
    image.commit([2, 1])
    image.tear(9)
    image.commit_superblock(1, [0], note="n")
    assert image.digest() == image.digest()
    text = image.digest()
    assert "torn\t9" in text and "note=n" in text


# ======================================================================
# Commit / recover round trip
# ======================================================================
def test_recover_rebuilds_committed_regions_auditor_clean():
    vm = committed_vm()
    baseline = final_report(vm)
    image = lift_image(vm)
    fresh = make_vm("commit")
    report = fresh.recover_h2(image)
    assert report.regions_quarantined == 0
    assert report.regions_recovered == len(image.manifest)
    assert report.checkpoint_note == "phase:1"
    assert final_report(fresh) == baseline
    fresh.auditor.audit("recovery", fresh.collector.mark_epoch)
    # Anchors re-root every recovered label.
    labels = {lbl for lbl, _, _ in baseline}
    assert set(fresh.h2_recovery_anchors) == labels


def test_recover_requires_fresh_vm():
    vm = committed_vm()
    image = lift_image(vm)
    with pytest.raises(ValueError):
        vm.h2.recover(image)


def test_recovered_vm_resumes_and_matches_crash_free_run():
    crash_free = committed_vm(phases=4)
    vm = committed_vm(phases=2)
    fresh = make_vm("commit")
    report = fresh.recover_h2(lift_image(vm))
    start = resume_phase(report.checkpoint_note)
    assert start == 2
    resumed = Workload(fresh, SEED)
    for i in range(start, 4):
        resumed.run_phase(i)
    assert final_report(fresh) == final_report(crash_free)


# ======================================================================
# Quarantine: torn data and stale epochs
# ======================================================================
def test_torn_data_page_quarantines_the_region():
    vm = committed_vm()
    image = lift_image(vm)
    victim = image.manifest[0]
    start = H2_BASE + victim * vm.h2.config.region_size
    entry = image.journal_entry(victim, image.committed_epoch)
    pages = list(vm.h2.mapping.pages_for(start, entry.used_bytes))
    image.tear(pages[0])
    fresh = make_vm("commit")
    report = fresh.recover_h2(image)
    assert victim in report.quarantined
    assert report.quarantined[victim].startswith("torn-data")
    assert report.regions_recovered == len(image.manifest) - 1
    # Quarantined indices get no region object and the audit stays clean.
    assert victim not in fresh.h2.regions
    fresh.auditor.audit("recovery", fresh.collector.mark_epoch)


def test_stale_epoch_header_quarantines_the_region():
    vm = committed_vm()
    image = lift_image(vm)
    victim = image.manifest[-1]
    stale = tuple(
        dataclasses.replace(e, epoch=e.epoch + 7)
        for e in image.journal_entries(victim)
    )
    image.journal[victim] = stale
    fresh = make_vm("commit")
    report = fresh.recover_h2(image)
    assert report.quarantined[victim].startswith("stale-epoch")
    fresh.auditor.audit("recovery", fresh.collector.mark_epoch)


def test_inconsistent_object_records_quarantine_the_region():
    vm = committed_vm()
    image = lift_image(vm)
    victim = image.manifest[0]
    broken = tuple(
        dataclasses.replace(e, objects=((4, 8),) + e.objects[1:])
        for e in image.journal_entries(victim)
    )
    image.journal[victim] = broken
    fresh = make_vm("commit")
    report = fresh.recover_h2(image)
    assert report.quarantined[victim].startswith("journal-inconsistent")


# ======================================================================
# Unrecoverable images fail loudly
# ======================================================================
def test_unreadable_superblock_is_unrecoverable():
    vm = committed_vm()
    image = lift_image(vm)
    image.superblock = None
    fresh = make_vm("commit")
    with pytest.raises(UnrecoverableCrash, match="superblock"):
        fresh.recover_h2(image)


def test_manifest_region_without_journal_is_unrecoverable():
    vm = committed_vm()
    image = lift_image(vm)
    victim = image.manifest[0]
    del image.journal[victim]
    fresh = make_vm("commit")
    with pytest.raises(UnrecoverableCrash, match=f"region {victim}"):
        fresh.recover_h2(image)


# ======================================================================
# Promotion-buffer-aware copy batches (ROADMAP nibble)
# ======================================================================
def _mover(size, region_id):
    obj = HeapObject(size)
    obj.region_id = region_id
    return (obj, f"r{region_id}")


def test_mover_copy_batches_match_buffer_flush_shape():
    vm = make_vm("none")  # buffer capacity 32 KiB (make_vm config)
    collector = vm.collector
    movers = [
        _mover(12 * KiB, 0),
        _mover(30 * KiB, 1),  # interleaved region: grouped, order kept
        _mover(12 * KiB, 0),
        _mover(12 * KiB, 0),  # 36 KiB > 32 KiB: splits the region-0 run
        _mover(2 * MiB, 1),  # >= direct-write threshold: singleton batch
        _mover(4 * KiB, 1),
    ]
    batches = collector.mover_copy_batches(movers)
    shape = [
        [(obj.size, label) for obj, label in batch] for batch in batches
    ]
    assert shape == [
        [(12 * KiB, "r0"), (12 * KiB, "r0")],
        [(12 * KiB, "r0")],
        [(30 * KiB, "r1")],
        [(2 * MiB, "r1")],
        [(4 * KiB, "r1")],
    ]
    # Every non-direct batch fits one promotion-buffer fill.
    capacity = vm.config.teraheap.promotion_buffer_size
    for batch in batches:
        nbytes = sum(obj.size for obj, _ in batch)
        assert nbytes <= capacity or len(batch) == 1


# ======================================================================
# Crash scheduling determinism
# ======================================================================
def test_crash_cells_are_deterministic_across_reruns():
    def run_once():
        fault = FaultConfig(
            seed=SEED, fault_seed=99, crash_point="h2_flush", crash_after=2
        )
        vm = make_vm("commit", fault)
        workload = Workload(vm, SEED)
        with pytest.raises(SimulatedCrash):
            for i in range(4):
                workload.run_phase(i)
        image = lift_image(vm)
        fresh = make_vm("commit")
        report = fresh.recover_h2(image)
        return image.digest(), report.digest()

    assert run_once() == run_once()


def test_crash_mid_parallel_compact_is_deterministic():
    """A kill inside the parallel compaction phase aborts the engine's
    multi-lane region via the crash exception.  The aborted region must
    charge nothing (mutator time stops at the last clean safepoint), so
    the clock, the durable image, and the recovery report are all
    byte-identical across reruns."""

    def run_once():
        fault = FaultConfig(
            seed=SEED, fault_seed=99, crash_point="major_compact",
            crash_after=2,
        )
        vm = make_vm("commit", fault)
        workload = Workload(vm, SEED)
        with pytest.raises(SimulatedCrash):
            for i in range(4):
                workload.run_phase(i)
        image = lift_image(vm)
        fresh = make_vm("commit")
        report = fresh.recover_h2(image)
        return vm.clock.now, image.digest(), report.digest()

    first = run_once()
    assert first == run_once()
    assert first[0] > 0.0


# ======================================================================
# Property: no schedule silently corrupts the heap
# ======================================================================
@settings(max_examples=8, deadline=None)
@given(
    fault_seed=st.integers(min_value=0, max_value=10_000),
    point=st.sampled_from([p for p, _ in CRASH_POINTS]),
    crash_after=st.integers(min_value=1, max_value=6),
    policy=st.sampled_from(["commit", "flush"]),
)
def test_any_crash_schedule_recovers_or_fails_loudly(
    fault_seed, point, crash_after, policy
):
    """Whatever the schedule does, the outcome is one of: the run
    completes auditor-clean; it crashes and recovery is auditor-clean;
    or recovery refuses with UnrecoverableCrash.  Silent corruption —
    a clean-looking heap that fails the audit — is never acceptable."""
    fault = FaultConfig(
        seed=SEED,
        fault_seed=fault_seed,
        crash_point=point,
        crash_after=crash_after,
        crash_rate=0.01,
    )
    vm = make_vm(policy, fault)
    workload = Workload(vm, SEED)
    try:
        for i in range(3):
            workload.run_phase(i)
    except SimulatedCrash:
        image = image_of(vm.h2.mapping)
        fresh = make_vm(policy)
        try:
            report = fresh.recover_h2(image)
        except UnrecoverableCrash:
            return  # loud failure is an accepted outcome
        assert report.regions_recovered + report.regions_quarantined == len(
            image.manifest
        )
        fresh.auditor.audit("recovery", fresh.collector.mark_epoch)
        resumed = Workload(fresh, SEED)
        try:
            for i in range(resume_phase(report.checkpoint_note), 3):
                resumed.run_phase(i)
        except InvariantViolation:
            pytest.fail("resumed run failed the post-GC audit")
        fresh.auditor.audit("minor", fresh.collector.mark_epoch)
