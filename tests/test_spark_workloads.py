"""Per-workload behavioural tests: each Spark workload exhibits the
memory/IO pattern the paper attributes to it."""

import pytest

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.devices.nvme import NVMeSSD
from repro.frameworks.spark import CachePolicy, SparkConf, SparkContext
from repro.frameworks.spark.workloads import SPARK_WORKLOADS
from repro.frameworks.spark.workloads.mllib import LARGE_BATCH
from repro.units import KiB


def make_ctx(policy=CachePolicy.SD, heap_gb=24, th=False):
    thc = (
        TeraHeapConfig(enabled=True, h2_size=gb(256), region_size=64 * KiB)
        if th
        else TeraHeapConfig()
    )
    vm = JavaVM(
        VMConfig(heap_size=gb(heap_gb), teraheap=thc, page_cache_size=gb(8))
    )
    return SparkContext(
        vm,
        SparkConf(
            cache_policy=policy,
            offheap_device=NVMeSSD(vm.clock),
            num_partitions=32,
        ),
    )


@pytest.mark.parametrize("name", sorted(SPARK_WORKLOADS))
def test_all_workloads_run_under_sd(name):
    ctx = make_ctx()
    SPARK_WORKLOADS[name](ctx, gb(16), scale=0.2)
    assert ctx.vm.elapsed() > 0
    assert not ctx.vm.oom


@pytest.mark.parametrize("name", ["LR", "LgR", "SVM"])
def test_ml_epochs_reaccess_cache(name):
    """ML training reads the whole cached set every epoch."""
    ctx = make_ctx(heap_gb=12)
    SPARK_WORKLOADS[name](ctx, gb(16), scale=0.3)
    # Off-heap partitions deserialized repeatedly (once per epoch).
    assert ctx.block_manager.deserializations > ctx.conf.num_partitions


@pytest.mark.parametrize("name", ["SVM", "BC", "RL"])
def test_humongous_workloads_use_large_batches(name):
    """The G1 fragmentation victims allocate row batches larger than half
    a G1 region."""
    ctx = make_ctx()
    SPARK_WORKLOADS[name](ctx, gb(16), scale=0.2)
    g1_region = ctx.vm.config.g1.region_size
    assert LARGE_BATCH > g1_region // 2
    batches = [
        o
        for o in ctx.vm.heap.old.objects
        if o.size == LARGE_BATCH
    ]
    assert batches, "cached humongous batches should be resident"


def test_tr_uses_fine_grained_chunks():
    """TR's adjacency is dense small objects (high scan factor)."""
    ctx = make_ctx()
    SPARK_WORKLOADS["TR"](ctx, gb(16), scale=0.2)
    scan_factors = {
        o.scan_factor
        for o in ctx.vm.heap.old.objects
        if o.name.startswith("tr-adj")
    }
    assert max(scan_factors, default=0) >= 8.0


def test_graph_workloads_shuffle_each_iteration():
    ctx = make_ctx()
    SPARK_WORKLOADS["PR"](ctx, gb(16), scale=0.5)
    assert ctx.shuffle_manager.shuffles >= 5


def test_cc_shuffle_volume_decays():
    """CC's label propagation shuffles shrink as labels settle."""
    ctx = make_ctx()
    SPARK_WORKLOADS["CC"](ctx, gb(16), scale=0.5)
    # Total shuffled < iterations x initial volume (decay happened).
    iterations = max(2, int(8 * 0.5))
    initial = int(gb(16) * 0.12)
    assert ctx.shuffle_manager.bytes_shuffled < iterations * initial


def test_bc_is_single_pass():
    """Naive Bayes reads its data once or twice, not per-epoch."""
    ctx = make_ctx(heap_gb=12)
    SPARK_WORKLOADS["BC"](ctx, gb(16), scale=0.5)
    # Far fewer deserializations than an iterative ML workload.
    ctx2 = make_ctx(heap_gb=12)
    SPARK_WORKLOADS["LgR"](ctx2, gb(16), scale=0.5)
    assert (
        ctx.block_manager.deserializations
        < ctx2.block_manager.deserializations
    )


def test_sd_breakdown_is_sd_dominated():
    """The paper's premise: GC + S/D dominate the baselines."""
    ctx = make_ctx(heap_gb=14)
    SPARK_WORKLOADS["LR"](ctx, gb(16), scale=0.4)
    b = ctx.vm.breakdown()
    total = sum(b.values())
    gc_sd = b["sd_io"] + b["minor_gc"] + b["major_gc"]
    assert gc_sd / total > 0.5


def test_th_breakdown_shifts_to_other():
    """TeraHeap converts S/D time into direct (device-backed) access."""
    sd = make_ctx(heap_gb=14)
    SPARK_WORKLOADS["LR"](sd, gb(16), scale=0.4)
    th = make_ctx(policy=CachePolicy.TERAHEAP, heap_gb=14, th=True)
    SPARK_WORKLOADS["LR"](th, gb(16), scale=0.4)
    assert th.vm.breakdown()["sd_io"] < sd.vm.breakdown()["sd_io"] * 0.2
    assert (
        th.vm.breakdown()["other"] / th.vm.elapsed()
        > sd.vm.breakdown()["other"] / sd.vm.elapsed()
    )


def test_workload_scale_parameter():
    """scale trims iterations while preserving per-iteration costs."""
    short = make_ctx()
    SPARK_WORKLOADS["PR"](short, gb(16), scale=0.2)
    long = make_ctx()
    SPARK_WORKLOADS["PR"](long, gb(16), scale=1.0)
    assert long.vm.elapsed() > short.vm.elapsed()
