"""JavaVM facade: allocation, GC escalation, OOM, access, barriers."""

import pytest

from repro import (
    JavaVM,
    OutOfMemoryError,
    SegmentationFault,
    TeraHeapConfig,
    VMConfig,
    gb,
)
from repro.clock import Bucket
from repro.heap.object_model import SpaceId
from repro.units import KiB


@pytest.fixture
def vm():
    return JavaVM(VMConfig(heap_size=gb(4)))


def test_allocate_returns_placed_object(vm):
    o = vm.allocate(1024, name="x")
    assert o.space is SpaceId.EDEN
    assert o.address >= 0


def test_allocate_charges_cost(vm):
    vm.allocate(1024)
    assert vm.clock.total(Bucket.OTHER) > 0


def test_allocation_survives_eden_exhaustion(vm):
    keep = vm.allocate(1024)
    vm.roots.add(keep)
    for _ in range(3 * vm.heap.eden.capacity // (64 * KiB)):
        vm.allocate(64 * KiB)
    assert vm.collector.stats.minor_count > 0
    assert keep.space is not SpaceId.FREED


def test_oom_when_live_exceeds_heap(vm):
    with pytest.raises(OutOfMemoryError):
        while True:
            vm.roots.add(vm.allocate(128 * KiB))
    assert vm.oom


def test_allocate_array(vm):
    objs = vm.allocate_array(5, 256, name="arr")
    assert len(objs) == 5
    assert all(o.size == 256 for o in objs)


def test_allocate_temp_dies_at_gc(vm):
    vm.allocate_temp(64 * KiB)
    used_before = vm.heap.eden.used
    assert used_before >= 64 * KiB
    vm.minor_gc()
    assert vm.heap.eden.used == 0


def test_write_ref_appends_and_removes(vm):
    a, b, c = vm.allocate(64), vm.allocate(64), vm.allocate(64)
    vm.write_ref(a, b)
    assert b in a.refs
    vm.write_ref(a, c, remove=b)
    assert b not in a.refs and c in a.refs


def test_write_ref_to_freed_object_faults(vm):
    dead = vm.allocate(64)
    vm.minor_gc()
    with pytest.raises(SegmentationFault):
        vm.write_ref(dead, None)


def test_read_freed_object_faults(vm):
    dead = vm.allocate(64)
    vm.minor_gc()
    with pytest.raises(SegmentationFault):
        vm.read_object(dead)


def test_barrier_counts_updates(vm):
    a, b = vm.allocate(64), vm.allocate(64)
    vm.write_ref(a, b)
    assert vm.barrier.barrier_count == 1


def test_compute_parallel_scaling():
    fast = JavaVM(VMConfig(heap_size=gb(4), mutator_threads=16))
    slow = JavaVM(VMConfig(heap_size=gb(4), mutator_threads=1))
    fast.compute(10000)
    slow.compute(10000)
    assert fast.clock.now < slow.clock.now


def test_clear_refs(vm):
    a, b = vm.allocate(64), vm.allocate(64)
    vm.write_ref(a, b)
    vm.clear_refs(a)
    assert a.refs == []


def test_breakdown_and_elapsed(vm):
    vm.allocate(1024)
    assert vm.elapsed() == sum(vm.breakdown().values())


def test_teraheap_vm_has_h2_and_hints():
    vm = JavaVM(
        VMConfig(
            heap_size=gb(4),
            teraheap=TeraHeapConfig(
                enabled=True, h2_size=gb(32), region_size=16 * KiB
            ),
        )
    )
    assert vm.h2 is not None
    assert vm.collector.name == "teraheap"
    obj = vm.allocate(1024)
    vm.roots.add(obj)
    vm.h2_tag_root(obj, "x")
    vm.h2_move("x")
    vm.major_gc()
    assert obj.space is SpaceId.H2


def test_plain_vm_has_no_h2(vm):
    assert vm.h2 is None
    assert vm.collector.name == "ps"


def test_collector_selection():
    from repro.config import PantheraConfig

    for name, cls_name in [
        ("ps11", "ParallelScavengeJDK11"),
        ("g1", "G1Collector"),
        ("memmode", "MemoryModeCollector"),
    ]:
        vm = JavaVM(VMConfig(heap_size=gb(4), collector=name))
        assert type(vm.collector).__name__ == cls_name
    vm = JavaVM(
        VMConfig(
            heap_size=gb(4), collector="panthera", panthera=PantheraConfig()
        )
    )
    assert type(vm.collector).__name__ == "PantheraCollector"


def test_caller_supplied_h2_device_is_not_mutated():
    """Regression: JavaVM used to rebind the caller's device in place,
    silently redirecting another VM's I/O charges onto this VM's clock."""
    from repro.clock import Clock
    from repro.devices.nvme import NVMeSSD

    shared_clock = Clock()
    shared_device = NVMeSSD(shared_clock)
    vm = JavaVM(
        VMConfig(
            heap_size=gb(4),
            teraheap=TeraHeapConfig(
                enabled=True, h2_size=gb(32), region_size=16 * KiB
            ),
        ),
        h2_device=shared_device,
    )
    assert shared_device.clock is shared_clock
    obj = vm.allocate(1024)
    vm.roots.add(obj)
    vm.h2_tag_root(obj, "x")
    vm.h2_move("x")
    vm.major_gc()
    assert obj.space is SpaceId.H2
    # All H2 traffic landed on the VM's own copy, none on the original.
    assert shared_device.traffic.bytes_written == 0
    assert shared_clock.now == 0.0
    assert vm.h2.device.clock is vm.clock
