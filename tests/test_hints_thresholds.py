"""The hint interface and the high/low threshold policy (Section 3.2)."""

import pytest

from repro.errors import InvalidHintError
from repro.heap.object_model import HeapObject, SpaceId
from repro.teraheap.hints import HintInterface
from repro.teraheap.thresholds import ThresholdPolicy


class TestHints:
    def test_tag_sets_label(self):
        hints = HintInterface()
        obj = HeapObject(64)
        hints.h2_tag_root(obj, "rdd-1")
        assert obj.label == "rdd-1"
        assert obj in hints.tagged_roots()

    def test_tag_requires_object(self):
        with pytest.raises(InvalidHintError):
            HintInterface().h2_tag_root(None, "x")

    def test_tag_requires_label(self):
        with pytest.raises(InvalidHintError):
            HintInterface().h2_tag_root(HeapObject(64), "")

    def test_tag_rejects_h2_resident(self):
        hints = HintInterface()
        obj = HeapObject(64)
        obj.space = SpaceId.H2
        with pytest.raises(InvalidHintError):
            hints.h2_tag_root(obj, "x")

    def test_move_marks_pending(self):
        hints = HintInterface()
        hints.h2_move("rdd-1")
        assert hints.is_move_pending("rdd-1")
        assert not hints.is_move_pending("rdd-2")

    def test_move_requires_label(self):
        with pytest.raises(InvalidHintError):
            HintInterface().h2_move("")

    def test_consume_moved(self):
        hints = HintInterface()
        obj = HeapObject(64)
        hints.h2_tag_root(obj, "a")
        hints.h2_move("a")
        obj.space = SpaceId.H2  # the collector moved it
        hints.consume_moved({"a"})
        assert not hints.is_move_pending("a")
        assert obj not in hints.tagged_roots()

    def test_tagged_roots_excludes_non_h1(self):
        hints = HintInterface()
        obj = HeapObject(64)
        hints.h2_tag_root(obj, "a")
        obj.space = SpaceId.H2
        assert hints.tagged_roots() == []

    def test_call_counters(self):
        hints = HintInterface()
        hints.h2_tag_root(HeapObject(64), "a")
        hints.h2_move("a")
        assert hints.tag_calls == 1
        assert hints.move_calls == 1


class TestThresholdPolicy:
    def make(self, **kw):
        defaults = dict(
            heap_capacity=1000,
            high_threshold=0.85,
            low_threshold=0.50,
            use_move_hint=True,
        )
        defaults.update(kw)
        return ThresholdPolicy(**defaults)

    def test_below_high_honours_hints_only(self):
        d = self.make().decide(live_bytes=500)
        assert d.move_hinted and not d.move_unhinted

    def test_no_hint_mode_below_high_moves_nothing(self):
        d = self.make(use_move_hint=False).decide(live_bytes=500)
        assert not d.move_hinted and not d.move_unhinted

    def test_above_high_moves_unhinted_with_budget(self):
        policy = self.make()
        d = policy.decide(live_bytes=900)
        assert d.move_unhinted
        assert d.unhinted_budget == 900 - 500  # down to the low threshold
        assert policy.pressure_transfers == 1

    def test_above_high_without_low_threshold_moves_all(self):
        d = self.make(low_threshold=None).decide(live_bytes=900)
        assert d.move_unhinted
        assert d.unhinted_budget is None

    def test_budget_never_negative(self):
        d = self.make(low_threshold=0.84).decide(live_bytes=851)
        assert d.unhinted_budget >= 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            self.make(high_threshold=1.5)
        with pytest.raises(ValueError):
            self.make(low_threshold=0.9)

    def test_exactly_at_high_threshold_no_pressure(self):
        d = self.make().decide(live_bytes=850)
        assert not d.move_unhinted
