"""Property test: handle-graph vs store-array equivalence.

Builds a random object graph through the ``HeapObject`` handle API while
maintaining an independent shadow model (plain dicts), applies a random
sequence of mark/promote/forward/age/label operations through the
handles, then checks every observable agrees with the shadow model:

- per-object attributes read back through the handles;
- the flat column views (``size_view`` .. ``epoch_view``);
- the traversal kernels — ``dfs_closure`` must reproduce the legacy
  stack-pop order exactly (the digest-gated GC paths depend on it), and
  ``bfs_closure_csr``/``dfs_reachable`` must agree on the reachable set
  (the order-insensitive path the auditor and bench use);
- the batch kernels (``mark_batch``, ``sum_sizes``, ``live_mask``,
  ``age_increment``, ``set_space_batch``) against per-handle loops.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.heap.object_model import (
    SPACE_BY_CODE,
    SPACE_CODES,
    HeapObject,
    SpaceId,
)
from repro.heap.store import NO_SPACE, get_store, reset_store

SPACES = list(SpaceId)
OP_KINDS = ("mark", "space", "forward", "age", "label", "candidate")


@st.composite
def scenarios(draw):
    n = draw(st.integers(min_value=2, max_value=25))
    adjacency = [
        draw(st.lists(st.integers(0, n - 1), max_size=4)) for _ in range(n)
    ]
    sizes = [draw(st.integers(16, 4096)) for _ in range(n)]
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(OP_KINDS),
                st.integers(0, n - 1),
                st.integers(0, 7),
            ),
            max_size=40,
        )
    )
    roots = draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=4))
    epoch = draw(st.integers(1, 5))
    return adjacency, sizes, ops, roots, epoch


def _apply(objs, shadow, op):
    kind, i, arg = op
    if kind == "mark":
        objs[i].mark_epoch = arg
        shadow[i]["mark_epoch"] = arg
    elif kind == "space":
        space = SPACES[arg % len(SPACES)]
        objs[i].space = space
        shadow[i]["space"] = SPACE_CODES[space]
    elif kind == "forward":
        if arg == 0:
            objs[i].forward_address = -1
            objs[i].forward_space = None
            shadow[i]["fwd_addr"] = -1
            shadow[i]["fwd_space"] = NO_SPACE
        else:
            space = SPACES[arg % len(SPACES)]
            objs[i].forward_address = arg * 8
            objs[i].forward_space = space
            shadow[i]["fwd_addr"] = arg * 8
            shadow[i]["fwd_space"] = SPACE_CODES[space]
    elif kind == "age":
        objs[i].age += 1
        shadow[i]["age"] += 1
    elif kind == "label":
        label = f"l{arg}" if arg else None
        objs[i].label = label
        shadow[i]["label"] = label
    elif kind == "candidate":
        objs[i].h2_candidate = bool(arg % 2)
        shadow[i]["candidate"] = bool(arg % 2)


def _legacy_stack_order(adjacency, roots):
    """The exact pre-refactor traversal: pop, then extend with refs."""
    seen = set()
    order = []
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        stack.extend(adjacency[node])
    return order, seen


@settings(max_examples=60, deadline=None)
@given(scenarios())
def test_handle_graph_matches_store_arrays(scenario):
    adjacency, sizes, ops, roots, epoch = scenario
    reset_store()
    store = get_store()

    objs = [HeapObject(size) for size in sizes]
    for i, targets in enumerate(adjacency):
        objs[i].refs = [objs[t] for t in targets]
    shadow = [
        {
            "size": sizes[i],
            "space": SPACE_CODES[SpaceId.EDEN],
            "age": 0,
            "mark_epoch": 0,
            "fwd_addr": -1,
            "fwd_space": NO_SPACE,
            "label": None,
            "candidate": False,
        }
        for i in range(len(sizes))
    ]
    for op in ops:
        _apply(objs, shadow, op)

    oids = np.asarray([o.oid for o in objs], dtype=np.int64)

    # Handles are canonical: the store hands back the same object.
    for obj in objs:
        assert store.handle(obj.oid) is obj

    # Per-object attribute reads match the shadow model.
    for obj, model in zip(objs, shadow):
        assert obj.size == model["size"]
        assert obj.space is SPACE_BY_CODE[model["space"]]
        assert obj.age == model["age"]
        assert obj.mark_epoch == model["mark_epoch"]
        assert obj.forward_address == model["fwd_addr"]
        expected_fwd = (
            None
            if model["fwd_space"] == NO_SPACE
            else SPACE_BY_CODE[model["fwd_space"]]
        )
        assert obj.forward_space is expected_fwd
        assert obj.label == model["label"]
        assert obj.h2_candidate == model["candidate"]

    # Column views expose the same state in one gather each.
    np.testing.assert_array_equal(
        store.size_view()[oids], [m["size"] for m in shadow]
    )
    np.testing.assert_array_equal(
        store.space_view()[oids], [m["space"] for m in shadow]
    )
    np.testing.assert_array_equal(
        store.age_view()[oids], [m["age"] for m in shadow]
    )
    np.testing.assert_array_equal(
        store.epoch_view()[oids], [m["mark_epoch"] for m in shadow]
    )

    # Edge state round-trips through RefList and the CSR snapshot.
    offsets, csr_targets = store.edge_csr()
    for i, targets in enumerate(adjacency):
        assert [r.oid for r in objs[i].refs] == [
            objs[t].oid for t in targets
        ]
        oid = objs[i].oid
        assert list(csr_targets[offsets[oid]:offsets[oid + 1]]) == [
            objs[t].oid for t in targets
        ]

    # Traversals: dfs_closure reproduces the legacy stack-pop order, and
    # the vectorized BFS (the auditor's reachability kernel) agrees on
    # the set.
    order, reachable = _legacy_stack_order(adjacency, roots)
    root_oids = [objs[r].oid for r in roots]
    assert store.dfs_closure(root_oids) == [objs[i].oid for i in order]
    reachable_oids = sorted(objs[i].oid for i in reachable)
    assert sorted(store.dfs_reachable(root_oids)) == reachable_oids
    np.testing.assert_array_equal(
        store.bfs_closure_csr(root_oids), reachable_oids
    )

    # Batch kernels against per-handle loops.
    live = np.asarray(reachable_oids, dtype=np.int64)
    store.mark_batch(live, epoch)
    for i, obj in enumerate(objs):
        expected = epoch if i in reachable else shadow[i]["mark_epoch"]
        assert obj.mark_epoch == expected
    assert store.sum_sizes(live) == sum(
        sizes[i] for i in reachable
    )
    mask = store.live_mask(oids, epoch)
    for i, obj in enumerate(objs):
        assert mask[i] == (obj.mark_epoch == epoch)

    ages_before = [o.age for o in objs]
    store.age_increment(live)
    for i, obj in enumerate(objs):
        assert obj.age == ages_before[i] + (1 if i in reachable else 0)

    dead = oids[~mask]
    store.set_space_batch(dead, SPACE_CODES[SpaceId.FREED])
    for i, obj in enumerate(objs):
        if not mask[i]:
            assert obj.space is SpaceId.FREED
