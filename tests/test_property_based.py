"""Property-based tests (hypothesis) on core data structures."""

from hypothesis import given, settings, strategies as st

from repro.clock import Bucket, Clock
from repro.devices.nvme import NVMeSSD
from repro.devices.page_cache import PageCache
from repro.heap.card_table import CardTable
from repro.heap.object_model import HeapObject
from repro.heap.spaces import Space, SpaceId
from repro.teraheap.h2_card_table import CardState, H2CardTable
from repro.teraheap.region_groups import RegionGroups
from repro.teraheap.regions import Region, metadata_bytes_per_tb
from repro.units import KiB, MiB


# ---------------------------------------------------------------------
# Clock
# ---------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
def test_clock_now_equals_sum_of_charges(charges):
    clock = Clock()
    for c in charges:
        clock.charge(c)
    assert clock.now == sum(clock.breakdown().values())


@given(
    st.lists(
        st.tuples(st.sampled_from(list(Bucket)), st.floats(0, 1e3)),
        max_size=50,
    )
)
def test_clock_buckets_are_disjoint(charges):
    clock = Clock()
    per_bucket = {b: 0.0 for b in Bucket}
    for bucket, amount in charges:
        clock.charge(amount, bucket)
        per_bucket[bucket] += amount
    for bucket in Bucket:
        assert clock.total(bucket) == per_bucket[bucket]


# ---------------------------------------------------------------------
# Bump allocation
# ---------------------------------------------------------------------
@given(st.lists(st.integers(min_value=16, max_value=4096), max_size=60))
def test_space_objects_never_overlap(sizes):
    space = Space(SpaceId.EDEN, base=0, capacity=64 * KiB)
    placed = []
    for size in sizes:
        obj = HeapObject(size)
        if space.allocate(obj):
            placed.append(obj)
    for a, b in zip(placed, placed[1:]):
        assert a.end_address() <= b.address
    assert space.used == sum(o.size for o in placed)
    assert space.used <= space.capacity


@given(st.lists(st.integers(min_value=16, max_value=2048), max_size=40))
def test_region_allocation_invariants(sizes):
    region = Region(0, start=0x1000, capacity=16 * KiB)
    for size in sizes:
        region.allocate(HeapObject(size))
    assert region.used <= region.capacity
    assert region.top == 0x1000 + region.used
    for obj in region.objects:
        assert region.contains_address(obj.address)
        assert obj.end_address() <= region.end


# ---------------------------------------------------------------------
# Card tables
# ---------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=8191), max_size=50))
def test_card_table_mark_roundtrip(addresses):
    ct = CardTable(base=0, size=8192, card_size=512)
    for addr in addresses:
        ct.mark(addr)
        assert ct.is_dirty(ct.card_index(addr))
    assert ct.dirty_count <= ct.num_cards
    dirty = list(ct.dirty_cards())
    assert dirty == sorted(set(dirty))


@given(
    st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1), max_size=50)
)
def test_h2_card_table_card_covers_address(addresses):
    base = 0x1_0000_0000
    table = H2CardTable(base, 1 << 20, 8 * KiB, 64 * KiB)
    for off in addresses:
        idx = table.card_index(base + off)
        lo, hi = table.card_range(idx)
        assert lo <= base + off < hi


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=127),
            st.sampled_from(list(CardState)),
        ),
        max_size=80,
    )
)
def test_h2_card_scan_sets_consistent(transitions):
    base = 0x1_0000_0000
    table = H2CardTable(base, 1 << 20, 8 * KiB, 64 * KiB)
    for idx, state in transitions:
        table.set_state(idx, state)
    minor = set(table.cards_to_scan(major=False))
    major = set(table.cards_to_scan(major=True))
    assert minor <= major  # minor scans a subset of major's set
    for idx in major - minor:
        assert table.state(idx) is CardState.OLD_GEN


# ---------------------------------------------------------------------
# Union-find region groups
# ---------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=0, max_value=30),
        ),
        max_size=60,
    )
)
def test_region_groups_equivalence_relation(unions):
    g = RegionGroups()
    for a, b in unions:
        g.union(a, b)
    regions = {r for pair in unions for r in pair}
    for r in regions:
        assert g.same_group(r, r)  # reflexive
        members = g.group_members(r)
        assert r in members
        for other in members:
            assert g.same_group(other, r)  # symmetric
            assert g.group_members(other) == members  # transitive closure


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=20),
        ),
        min_size=1,
        max_size=30,
    ),
    st.sets(st.integers(min_value=0, max_value=20), max_size=5),
)
def test_region_groups_liveness_closed(unions, live_seed):
    g = RegionGroups()
    for a, b in unions:
        g.union(a, b)
    live = g.live_regions(live_seed)
    # Liveness is closed over groups: any group member of a live region
    # is live.
    for r in live:
        assert g.group_members(r) <= live


# ---------------------------------------------------------------------
# Page cache
# ---------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=100), st.booleans()),
        max_size=100,
    )
)
@settings(max_examples=50)
def test_page_cache_never_exceeds_capacity(accesses):
    cache = PageCache(NVMeSSD(Clock()), capacity=8 * 4096)
    for page, write in accesses:
        cache.access([page], write=write)
        assert len(cache) <= cache.max_pages
    assert cache.hits + cache.misses == len(accesses)


# ---------------------------------------------------------------------
# Table 5 analytics
# ---------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=8))
def test_metadata_halves_per_doubling(power):
    size = (1 << power) * MiB
    assert metadata_bytes_per_tb(size * 2) * 2 == metadata_bytes_per_tb(size)


# ---------------------------------------------------------------------
# Block manager residency accounting
# ---------------------------------------------------------------------
def _bm_vm():
    from repro import JavaVM, TeraHeapConfig, VMConfig, gb
    from repro.config import GovernorConfig

    return JavaVM(
        VMConfig(
            heap_size=gb(4),
            teraheap=TeraHeapConfig(
                enabled=True, h2_size=gb(32), region_size=64 * KiB
            ),
            page_cache_size=gb(4),
            governor=GovernorConfig(),
        )
    )


def _bm_cache(vm, bm, rdd, index):
    from repro.frameworks.spark.rdd import MaterializedPartition

    def build(_):
        with vm.roots.frame() as frame:
            chunks = [
                frame.push(vm.allocate(8 * KiB, name=f"p{index}-c{i}"))
                for i in range(3)
            ]
            root = vm.allocate(256, refs=chunks, name=f"p{index}")
        return MaterializedPartition(root=root, chunks=chunks)

    return bm.get_or_compute(rdd, index, build)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(
                ["store", "spill", "shed", "evict", "gc", "reconcile"]
            ),
            st.integers(min_value=0, max_value=7),
        ),
        max_size=25,
    )
)
@settings(max_examples=25, deadline=None)
def test_block_manager_residency_never_drifts(ops):
    """Counters always equal ground truth recomputed from the entries.

    Whatever interleaving of stores, spills, sheds, evictions, major GCs
    (H1 -> H2 migration) and reconciles runs, ``onheap_used`` /
    ``h2_bytes`` / ``offheap_bytes`` must equal the sum of
    ``charged_bytes()`` over entries charged to that bucket — the
    single-exit invariant of ``_remove_entry``.
    """
    from repro.frameworks.spark import BlockManager, CachePolicy, SparkConf

    vm = _bm_vm()
    bm = BlockManager(vm, SparkConf(cache_policy=CachePolicy.TERAHEAP))

    class Stub:
        rdd_id = 1
        name = "rdd-1"
        cache_label = "rdd-1"

    rdd = Stub()
    for op, index in ops:
        if op == "store":
            _bm_cache(vm, bm, rdd, index)
        elif op == "spill":
            bm.spill_entry((1, index))
        elif op == "shed":
            bm.shed_blocks(16 * KiB)
        elif op == "evict":
            bm.evict_rdd(rdd)
        elif op == "gc":
            vm.major_gc()
        else:
            bm.reconcile_residency()
        h1 = h2 = off = 0
        for entry in bm.entries.values():
            assert entry.charged in ("h1", "h2", "offheap")
            if entry.charged == "h1":
                h1 += entry.charged_bytes()
            elif entry.charged == "h2":
                h2 += entry.charged_bytes()
            else:
                off += entry.charged_bytes()
        assert bm.onheap_used == h1
        assert bm.h2_bytes == h2
        assert bm.offheap_bytes == off
        assert min(bm.onheap_used, bm.h2_bytes, bm.offheap_bytes) >= 0
