"""Unit helpers: scale conversion and alignment."""

import pytest

from repro import units


def test_gb_is_scaled_gib():
    assert units.GB == int(units.GiB * units.SCALE)
    assert units.gb(2) == 2 * units.GB


def test_mb_matches_gb_ratio():
    assert units.GB == 1024 * units.MB


def test_tb():
    assert units.TB == 1024 * units.GB


def test_gb_fractional():
    assert units.gb(0.5) == units.GB // 2


def test_fmt_bytes_gb():
    assert units.fmt_bytes(units.gb(3)) == "3.0 GB"


def test_fmt_bytes_mb():
    assert units.fmt_bytes(units.mb(12)) == "12.0 MB"


def test_fmt_bytes_tb():
    assert "TB" in units.fmt_bytes(units.TB * 2)


def test_fmt_bytes_small():
    assert units.fmt_bytes(17) == "17 B"


def test_align_up():
    assert units.align_up(10, 8) == 16
    assert units.align_up(16, 8) == 16
    assert units.align_up(0, 8) == 0


def test_align_down():
    assert units.align_down(10, 8) == 8
    assert units.align_down(16, 8) == 16


@pytest.mark.parametrize("func", [units.align_up, units.align_down])
def test_align_rejects_nonpositive(func):
    with pytest.raises(ValueError):
        func(10, 0)
