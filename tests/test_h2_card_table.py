"""Four-state H2 card table with slices/stripes (Section 3.4)."""

import pytest

from repro.teraheap.h2_card_table import CardState, H2CardTable
from repro.units import KiB

BASE = 0x1_0000_0000


@pytest.fixture
def table():
    # 1 MiB of H2, 8 KiB segments, 64 KiB stripes.
    return H2CardTable(BASE, 1 << 20, 8 * KiB, 64 * KiB)


def test_geometry(table):
    assert table.num_cards == 128
    assert table.cards_per_stripe == 8
    assert table.num_stripes == 16
    assert table.table_bytes == 128  # one byte per card


def test_default_state_clean(table):
    assert table.state(0) is CardState.CLEAN


def test_mark_dirty(table):
    table.mark_dirty(BASE + 10_000)
    idx = table.card_index(BASE + 10_000)
    assert table.state(idx) is CardState.DIRTY
    assert table.mutator_marks == 1


def test_set_state_transitions(table):
    table.mark_dirty(BASE)
    table.set_state(0, CardState.YOUNG_GEN)
    assert table.state(0) is CardState.YOUNG_GEN
    table.set_state(0, CardState.OLD_GEN)
    assert table.state(0) is CardState.OLD_GEN
    table.set_state(0, CardState.CLEAN)
    assert table.state(0) is CardState.CLEAN


def test_minor_scan_set_excludes_oldgen(table):
    """Minor GC scans dirty + youngGen; oldGen segments are skipped
    because the old generation does not move in a scavenge."""
    table.set_state(0, CardState.DIRTY)
    table.set_state(1, CardState.YOUNG_GEN)
    table.set_state(2, CardState.OLD_GEN)
    assert table.cards_to_scan(major=False) == [0, 1]


def test_major_scan_includes_oldgen(table):
    table.set_state(0, CardState.DIRTY)
    table.set_state(2, CardState.OLD_GEN)
    assert table.cards_to_scan(major=True) == [0, 2]


def test_card_range(table):
    lo, hi = table.card_range(1)
    assert lo == BASE + 8 * KiB
    assert hi == BASE + 16 * KiB


def test_out_of_range_address(table):
    with pytest.raises(ValueError):
        table.card_index(BASE - 1)


def test_stripe_of_card(table):
    assert table.stripe_of_card(0) == 0
    assert table.stripe_of_card(8) == 1


def test_clear_range(table):
    table.set_state(0, CardState.DIRTY)
    table.set_state(1, CardState.OLD_GEN)
    table.clear_range(BASE, BASE + 16 * KiB)
    assert table.state(0) is CardState.CLEAN
    assert table.state(1) is CardState.CLEAN


def test_scan_parallelism(table):
    assert table.scan_parallelism(4) == 4
    assert table.scan_parallelism(1000) == table.num_stripes


def test_stripe_alignment_validation():
    with pytest.raises(ValueError):
        H2CardTable(BASE, 1 << 20, 8 * KiB, 12 * KiB)  # not a multiple


class TestBoundaryCardAblation:
    """stripe_aligned=False reproduces the vanilla JVM's sticky cards."""

    def make(self, aligned):
        return H2CardTable(
            BASE, 1 << 20, 8 * KiB, 64 * KiB, stripe_aligned=aligned
        )

    def test_aligned_boundary_cards_clean_normally(self):
        t = self.make(True)
        t.mark_dirty(BASE)  # card 0 is a stripe boundary
        t.set_state(0, CardState.CLEAN)
        assert t.state(0) is CardState.CLEAN

    def test_unaligned_boundary_cards_stay_dirty(self):
        t = self.make(False)
        t.mark_dirty(BASE)  # boundary card becomes sticky
        t.set_state(0, CardState.CLEAN)
        assert t.state(0) is CardState.DIRTY
        assert 0 in t.cards_to_scan(major=False)

    def test_unaligned_interior_cards_clean_fine(self):
        t = self.make(False)
        t.mark_dirty(BASE + 3 * 8 * KiB)  # interior card of stripe 0
        t.set_state(3, CardState.CLEAN)
        assert t.state(3) is CardState.CLEAN

    def test_clear_range_unsticks(self):
        t = self.make(False)
        t.mark_dirty(BASE)
        t.clear_range(BASE, BASE + 8 * KiB)
        assert t.state(0) is CardState.CLEAN
