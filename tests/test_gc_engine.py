"""Task-based GC engine: scheduling, determinism, scalar-model parity."""

import json

import pytest

from repro.clock import Bucket, Clock
from repro.config import CostModel, VMConfig
from repro.devices.nvme import NVMeSSD
from repro.experiments import gc_scaling
from repro.experiments.configs import SPARK_DR2_GB, SPARK_WORKLOADS_TABLE3
from repro.frameworks.spark import CachePolicy, SparkConf, SparkContext
from repro.frameworks.spark.workloads import SPARK_WORKLOADS
from repro.gc.base import GCCycle, GCStats
from repro.gc.engine import GCTaskEngine, TaskBag, chunked_sweep
from repro.metrics import chrome_trace_json
from repro.metrics.trace import gc_timeline_csv
from repro.runtime import JavaVM
from repro.units import gb


def make_engine(workers=4, trace=False, clock=None):
    return GCTaskEngine(
        clock or Clock(), CostModel(), workers=workers, seed=7, trace=trace
    )


# ======================================================================
# Task decomposition
# ======================================================================
def test_task_bag_rejects_negative_cost():
    bag = TaskBag()
    with pytest.raises(ValueError):
        bag.add("bad", -1.0)


def test_batch_builder_emits_fixed_size_batches():
    bag = TaskBag()
    b = bag.batcher("scan", "scan", 4)
    for _ in range(10):
        b.add(0.5)
    b.flush()
    assert len(bag) == 3  # 4 + 4 + 2
    assert bag.serial_seconds == pytest.approx(5.0)
    assert [t.name for t in bag] == ["scan-0", "scan-1", "scan-2"]
    b.flush()  # idempotent on an empty builder
    assert len(bag) == 3


def test_chunked_sweep_folds_extra_costs_with_affinity():
    bag = TaskBag()
    chunked_sweep(
        bag, "cards", 10, per_item_cost=1.0, chunk_items=4,
        extra={0: 5.0, 9: 7.0},
    )
    tasks = list(bag)
    assert [t.cost for t in tasks] == [9.0, 4.0, 9.0]  # 4+5, 4, 2+7
    assert [t.affinity for t in tasks] == [0, 1, 2]
    empty = TaskBag()
    chunked_sweep(empty, "cards", 0, 1.0, 4)
    assert not empty


# ======================================================================
# Engine scheduling
# ======================================================================
def test_empty_bag_charges_nothing():
    clock = Clock()
    engine = make_engine(clock=clock)
    execution = engine.run(TaskBag(), "noop")
    assert execution.tasks == 0
    assert clock.now == 0.0


def test_single_worker_charges_serial_cost_plus_dispatch():
    clock = Clock()
    cost = CostModel()
    engine = make_engine(workers=1, clock=clock)
    bag = TaskBag()
    for i in range(5):
        bag.add(f"t{i}", 1.0)
    execution = engine.run(bag, "phase")
    expected = 5.0 + 5 * cost.gc_task_dispatch_cost
    assert clock.now == pytest.approx(expected)
    assert execution.steals == 0
    assert execution.idle_seconds == 0.0
    assert execution.imbalance == pytest.approx(1.0)


def test_workers_capped_by_task_count():
    engine = make_engine(workers=16)
    bag = TaskBag()
    bag.add("a", 1.0)
    bag.add("b", 1.0)
    execution = engine.run(bag, "phase")
    assert execution.workers == 2


def test_parallel_run_beats_serial_and_reports_lanes():
    clock = Clock()
    engine = make_engine(workers=4, clock=clock)
    bag = TaskBag()
    for i in range(32):
        bag.add(f"t{i}", 0.01)
    execution = engine.run(bag, "phase")
    assert execution.critical_path < execution.serial_seconds
    assert clock.now == pytest.approx(execution.critical_path)
    assert execution.speedup > 2.0
    assert len(execution.per_worker) == 4
    assert sum(w.tasks for w in execution.per_worker) == 32
    assert execution.imbalance >= 1.0


def test_affinity_skew_forces_steals():
    engine = make_engine(workers=4)
    bag = TaskBag()
    for i in range(16):
        bag.add(f"t{i}", 0.01, affinity=0)  # all on worker 0's deque
    execution = engine.run(bag, "phase")
    assert execution.steals > 0
    thieves = [w for w in execution.per_worker if w.index != 0]
    assert sum(w.tasks for w in thieves) > 0
    assert sum(w.steals for w in thieves) == execution.steals


def test_termination_cost_only_with_multiple_workers():
    cost = CostModel()
    c1, c2 = Clock(), Clock()
    bag1, bag2 = TaskBag(), TaskBag()
    for bag in (bag1, bag2):
        bag.add("a", 1.0)
        bag.add("b", 1.0)
    make_engine(workers=1, clock=c1).run(bag1, "p")
    make_engine(workers=2, clock=c2).run(bag2, "p")
    # Two equal tasks split perfectly across two lanes: half the busy
    # time, plus the termination protocol each worker pays.
    assert c2.now == pytest.approx(
        1.0 + cost.gc_task_dispatch_cost + cost.gc_termination_cost
    )
    assert c1.now == pytest.approx(2.0 + 2 * cost.gc_task_dispatch_cost)


def test_engine_charges_into_current_bucket():
    clock = Clock()
    engine = make_engine(workers=2, clock=clock)
    bag = TaskBag()
    bag.add("a", 1.0)
    with clock.context(Bucket.MAJOR_GC):
        engine.run(bag, "phase")
    assert clock.total(Bucket.MAJOR_GC) > 0.0
    assert clock.total(Bucket.OTHER) == 0.0


# ======================================================================
# Determinism (satellite: seeded stealing, byte-identical runs)
# ======================================================================
def test_two_runs_are_byte_identical():
    vm1 = gc_scaling.run_churn(4, batches=8, trace=True)
    vm2 = gc_scaling.run_churn(4, batches=8, trace=True)
    assert vm1.breakdown() == vm2.breakdown()
    csv1 = gc_timeline_csv(vm1.collector.stats.cycles)
    csv2 = gc_timeline_csv(vm2.collector.stats.cycles)
    assert csv1 == csv2
    trace1 = chrome_trace_json(vm1.collector.engine)
    trace2 = chrome_trace_json(vm2.collector.engine)
    assert trace1 == trace2
    assert vm1.collector.engine.total_steals > 0


def test_engine_seed_comes_from_config():
    vm = gc_scaling.run_churn(2, batches=2)
    assert vm.config.engine.seed == 0x7E2A6C


# ======================================================================
# Chrome-trace export
# ======================================================================
def test_chrome_trace_document_shape():
    vm = gc_scaling.run_churn(2, batches=6, trace=True)
    doc = json.loads(chrome_trace_json(vm.collector.engine, label="churn"))
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in meta} >= {"process_name", "thread_name"}
    assert spans, "tracing produced no task events"
    for span in spans:
        assert span["tid"] in (0, 1)
        assert span["dur"] >= 0
        assert "kind" in span["args"]
    assert doc["otherData"]["tasks"] == vm.collector.engine.total_tasks


def test_trace_disabled_by_default():
    vm = gc_scaling.run_churn(2, batches=4)
    assert vm.collector.engine.trace_events == []


# ======================================================================
# Single-thread parity with the scalar model (fig06 workload)
# ======================================================================
def _fig06_cell_vm(gc_threads: int) -> JavaVM:
    """One Figure 6 Spark-SD cell (PR, largest DRAM point)."""
    cfg = SPARK_WORKLOADS_TABLE3["PR"]
    dram = cfg.sd_drams[-1]
    heap_gb = max(dram - SPARK_DR2_GB, dram / 2)
    vm = JavaVM(
        VMConfig(
            heap_size=gb(heap_gb),
            collector="ps",
            gc_threads=gc_threads,
            page_cache_size=gb(SPARK_DR2_GB),
        )
    )
    ctx = SparkContext(
        vm,
        SparkConf(
            cache_policy=CachePolicy.SD,
            offheap_device=NVMeSSD(vm.clock),
        ),
    )
    SPARK_WORKLOADS["PR"](ctx, gb(cfg.dataset_gb), scale=0.25)
    return vm


def test_single_thread_within_5pct_of_scalar_model_on_fig06():
    """gc_threads=1: engine overhead (dispatch; no stealing, no
    termination) must keep every cycle within 5% of the pre-engine
    scalar cost model, whose pause was exactly the serial task cost."""
    vm = _fig06_cell_vm(1)
    cycles = [c for c in vm.collector.stats.cycles if c.tasks_executed]
    assert cycles, "fig06 cell ran no GC"
    for cycle in cycles:
        overhead = cycle.parallel_seconds - cycle.parallel_serial_seconds
        assert overhead >= 0.0
        scalar_duration = cycle.duration - overhead
        assert cycle.duration <= scalar_duration * 1.05
        assert cycle.steals == 0
        assert cycle.idle_seconds == 0.0
        assert cycle.imbalance == pytest.approx(1.0)


# ======================================================================
# Thread scaling (sweep shape)
# ======================================================================
def test_scaling_monotone_and_sublinear():
    points = gc_scaling.run_scaling((1, 2, 4, 8, 16), batches=16)
    by_threads = {p.gc_threads: p for p in points}
    pauses = [by_threads[t].total_pause_s for t in (1, 2, 4, 8, 16)]
    assert pauses == sorted(pauses, reverse=True)
    prev = 0.0
    for t in (2, 4, 8, 16):
        p = by_threads[t]
        assert p.pause_speedup > prev  # monotone in threads
        assert p.pause_speedup < t  # sub-linear (overheads tax lanes)
        assert len(p.worker_steals) == t
        assert len(p.worker_idle_s) == t
        prev = p.pause_speedup
    assert by_threads[1].pause_speedup == pytest.approx(1.0)
    # Wide pools steal and idle; the serial point cannot.
    assert by_threads[16].steals > 0
    assert by_threads[16].idle_s > by_threads[1].idle_s


def test_scaling_baseline_gate():
    points = gc_scaling.run_scaling((1, 2), batches=10)
    assert points[0].total_pause_s > 0.0, "churn run must trigger GC"
    by_policy = {"steal-one": points}
    payload = gc_scaling.baseline_payload(by_policy, batches=10)
    assert payload["schema"] == 3
    assert gc_scaling.check_baseline(by_policy, payload) == []
    shrunk = json.loads(json.dumps(payload))
    shrunk["policies"]["steal-one"][0]["total_pause_s"] /= 2.0
    failures = gc_scaling.check_baseline(by_policy, shrunk)
    assert failures and "regressed" in failures[0]
    assert gc_scaling.check_baseline(by_policy, {"policies": {}})
    # Schema-1 fallback: a flat point list is treated as steal-one.
    legacy = {"points": payload["policies"]["steal-one"]}
    assert gc_scaling.check_baseline(by_policy, legacy) == []


# ======================================================================
# GCStats aggregation (satellite: phase_totals / mean_time coverage)
# ======================================================================
def _cycle(kind, duration, **kwargs):
    return GCCycle(kind=kind, start_time=0.0, duration=duration, **kwargs)


def test_gcstats_phase_totals_and_mean_time():
    stats = GCStats()
    stats.record(_cycle("minor", 1.0))
    stats.record(_cycle("minor", 3.0))
    stats.record(
        _cycle("major", 10.0, phases={"marking": 6.0, "compact": 4.0})
    )
    stats.record(
        _cycle("major", 20.0, phases={"marking": 12.0, "adjust": 8.0})
    )
    assert stats.mean_time("minor") == pytest.approx(2.0)
    assert stats.mean_time("major") == pytest.approx(15.0)
    assert stats.mean_time("concurrent") == 0.0  # no such cycles
    assert stats.phase_totals() == {
        "marking": 18.0,
        "compact": 4.0,
        "adjust": 8.0,
    }


def test_gcstats_parallel_aggregates():
    stats = GCStats()
    stats.record(
        _cycle(
            "minor", 2.0, gc_threads=4, tasks_executed=10, steals=2,
            idle_seconds=0.5, imbalance=1.2,
            parallel_serial_seconds=4.0, parallel_seconds=1.5,
        )
    )
    stats.record(
        _cycle(
            "major", 6.0, gc_threads=4, tasks_executed=30, steals=4,
            idle_seconds=1.5, imbalance=1.4,
            parallel_serial_seconds=12.0, parallel_seconds=4.5,
        )
    )
    assert stats.total_tasks() == 40
    assert stats.total_tasks("minor") == 10
    assert stats.total_steals() == 6
    assert stats.total_idle("major") == pytest.approx(1.5)
    # Parallel-time-weighted: (1.2*1.5 + 1.4*4.5) / 6.0
    assert stats.mean_imbalance() == pytest.approx(1.35)
    # serial / (threads * parallel) = 16 / (4 * 6)
    assert stats.parallel_efficiency() == pytest.approx(16.0 / 24.0)
    assert stats.cycles[0].parallel_speedup == pytest.approx(4.0 / 1.5)


def test_gcstats_parallel_aggregates_single_thread_edge():
    vm = gc_scaling.run_churn(1, batches=8)
    stats = vm.collector.stats
    assert stats.cycles
    for cycle in stats.cycles:
        assert cycle.gc_threads == 1
        assert cycle.steals == 0
        assert cycle.idle_seconds == 0.0
        assert cycle.imbalance == pytest.approx(1.0)
        assert cycle.worker_busy and len(cycle.worker_busy) == 1
        assert cycle.worker_steals == [0]
    assert stats.total_steals() == 0
    assert stats.mean_imbalance() == pytest.approx(1.0)
    # Only dispatch overhead separates the engine from the serial model.
    assert 0.99 <= stats.parallel_efficiency() <= 1.0


def test_empty_stats_defaults():
    stats = GCStats()
    assert stats.mean_imbalance() == 1.0
    assert stats.parallel_efficiency() == 1.0
    assert stats.total_tasks() == 0


# ======================================================================
# Worker clamp (satellite bugfix: explicit workers= vs the pool size)
# ======================================================================
def test_explicit_workers_clamped_to_pool_size():
    engine = make_engine(workers=2)
    bag = TaskBag()
    for i in range(8):
        bag.add(f"t{i}", 0.01)
    execution = engine.run(bag, "phase", workers=8)
    assert execution.workers == 2
    assert len(execution.per_worker) == 2


def test_explicit_workers_can_narrow_the_pool():
    engine = make_engine(workers=8)
    bag = TaskBag()
    for i in range(8):
        bag.add(f"t{i}", 0.01)
    execution = engine.run(bag, "phase", workers=3)
    assert execution.workers == 3


# ======================================================================
# Concurrent lane set (tentpole: marking races the mutator budget)
# ======================================================================
def test_concurrent_budget_hides_up_to_the_critical_path():
    clock = Clock()
    engine = make_engine(workers=4, clock=clock)
    bag = TaskBag()
    for i in range(16):
        bag.add(f"t{i}", 0.01)
    with clock.context(Bucket.MAJOR_GC):
        execution = engine.run(bag, "mark", concurrent_budget=100.0)
    assert execution.hidden_seconds == pytest.approx(
        execution.critical_path
    )
    assert execution.charged_seconds == pytest.approx(0.0)
    assert clock.total(Bucket.MAJOR_GC) == pytest.approx(0.0)
    assert engine.total_hidden_seconds == pytest.approx(
        execution.hidden_seconds
    )
    assert execution.stat_record()["hidden_s"] == pytest.approx(
        execution.hidden_seconds
    )


def test_concurrent_budget_charges_only_the_overrun():
    clock = Clock()
    engine = make_engine(workers=1, clock=clock)
    bag = TaskBag()
    bag.add("t", 1.0)
    with clock.context(Bucket.MAJOR_GC):
        execution = engine.run(bag, "mark", concurrent_budget=0.25)
    assert execution.hidden_seconds == pytest.approx(0.25)
    assert clock.total(Bucket.MAJOR_GC) == pytest.approx(
        execution.critical_path - 0.25
    )


def test_plain_runs_hide_nothing():
    clock = Clock()
    engine = make_engine(workers=2, clock=clock)
    bag = TaskBag()
    bag.add("t", 1.0)
    execution = engine.run(bag, "phase")
    assert execution.hidden_seconds == 0.0
    assert execution.charged_seconds == pytest.approx(
        execution.critical_path
    )
    assert engine.total_hidden_seconds == 0.0


def test_summary_accumulates_hidden_seconds():
    from repro.gc.engine.engine import summarize_executions

    clock = Clock()
    engine = make_engine(workers=2, clock=clock)
    execs = []
    for budget in (100.0, None):
        bag = TaskBag()
        bag.add("t", 0.5)
        execs.append(engine.run(bag, "mark", concurrent_budget=budget))
    summary = summarize_executions(execs, workers=2)
    assert summary.hidden_seconds == pytest.approx(
        execs[0].hidden_seconds
    )
    assert summary.hidden_seconds > 0.0


# ======================================================================
# Cycle summary accounting (satellite bugfix: per-phase-weighted mean)
# ======================================================================
def test_summary_imbalance_weights_mixed_worker_phases():
    """A cycle mixing a 2-worker phase with a 1-worker phase: the mean
    active lane time must weight each phase by its own worker count, not
    divide everything by the widest pool."""
    from repro.gc.engine.engine import (
        PhaseExecution,
        WorkerStats,
        summarize_executions,
    )

    wide = PhaseExecution(
        phase="scan", workers=2, tasks=4, serial_seconds=3.0,
        critical_path=2.0, steals=0, idle_seconds=1.0, imbalance=4.0 / 3.0,
        per_worker=[
            WorkerStats(0, busy_seconds=2.0),
            WorkerStats(1, busy_seconds=1.0, idle_seconds=1.0),
        ],
    )
    narrow = PhaseExecution(
        phase="compact", workers=1, tasks=2, serial_seconds=4.0,
        critical_path=4.0, steals=0, idle_seconds=0.0, imbalance=1.0,
        per_worker=[WorkerStats(0, busy_seconds=4.0)],
    )
    summary = summarize_executions([wide, narrow], workers=2)
    # mean active = 3.0/2 (wide) + 4.0/1 (narrow) = 5.5;
    # imbalance = (2.0 + 4.0) / 5.5.  The old max-lane-count formula
    # divided the narrow phase's 4.0s by 2 lanes, giving 6.0/3.5 ~ 1.71.
    assert summary.imbalance == pytest.approx(6.0 / 5.5)
    assert summary.parallel_seconds == pytest.approx(6.0)
    assert summary.serial_seconds == pytest.approx(7.0)


def test_summary_imbalance_uniform_workers_unchanged():
    """All-same-worker-count cycles must keep the old (correct) value."""
    from repro.gc.engine.engine import summarize_executions

    engine = make_engine(workers=4)
    execs = []
    for _ in range(3):
        bag = TaskBag()
        for i in range(16):
            bag.add(f"t{i}", 0.01)
        execs.append(engine.run(bag, "phase"))
    summary = summarize_executions(execs, workers=4)
    active = sum(
        ws.active_seconds for ex in execs for ws in ex.per_worker
    )
    expected = sum(e.critical_path for e in execs) / (active / 4)
    assert summary.imbalance == pytest.approx(expected)


# ======================================================================
# Steal policies (tentpole: steal-one vs steal-half)
# ======================================================================
def make_policy_engine(policy, workers=4, numa_nodes=1, cost=None,
                       clock=None):
    return GCTaskEngine(
        clock or Clock(), cost or CostModel(), workers=workers, seed=7,
        steal_policy=policy, numa_nodes=numa_nodes,
    )


def skewed_bag(n=16, cost=0.01):
    bag = TaskBag()
    for i in range(n):
        bag.add(f"t{i}", cost, affinity=0)
    return bag


def test_engine_rejects_unknown_steal_policy():
    with pytest.raises(ValueError):
        make_policy_engine("steal-two")
    with pytest.raises(ValueError):
        GCTaskEngine(Clock(), CostModel(), workers=2, seed=7, numa_nodes=0)


def test_steal_half_moves_more_tasks_per_steal():
    one = make_policy_engine("steal-one").run(skewed_bag(), "p")
    half = make_policy_engine("steal-half").run(skewed_bag(), "p")
    # Same work either way; only the schedules differ.
    assert one.serial_seconds == pytest.approx(half.serial_seconds)
    assert one.tasks == half.tasks
    # steal-one: every stolen task is its own steal operation.
    assert one.stolen_tasks == one.steals
    # steal-half: bulk transfers — fewer operations, >1 task per grab.
    assert half.steals < one.steals
    assert half.stolen_tasks > half.steals


def test_steal_half_transfer_cost_scales_with_grab_size():
    cost = CostModel(gc_steal_transfer_cost=0.25)
    execution = make_policy_engine("steal-half", cost=cost).run(
        skewed_bag(n=32, cost=1.0), "p"
    )
    assert execution.stolen_tasks > execution.steals
    # Each steal charges base cost plus per-extra-task transfer cost:
    # summed over the run, steal time must equal
    # steals*base + (stolen_tasks - steals)*transfer exactly.
    total_steal_time = sum(
        ws.steal_seconds for ws in execution.per_worker
    )
    expected = (
        execution.steals * cost.gc_steal_cost
        + (execution.stolen_tasks - execution.steals)
        * cost.gc_steal_transfer_cost
    )
    assert total_steal_time == pytest.approx(expected)


def test_scaling_policies_diverge_with_equal_work():
    one = gc_scaling.run_scaling((2,), batches=24, steal_policy="steal-one")
    half = gc_scaling.run_scaling(
        (2,), batches=24, steal_policy="steal-half"
    )
    assert one[0].serial_s == pytest.approx(half[0].serial_s)
    assert one[0].tasks == half[0].tasks
    assert one[0].steals != half[0].steals


# ======================================================================
# NUMA lanes (tentpole: node-aware victim selection + remote premium)
# ======================================================================
def test_local_victims_preferred_when_both_nodes_have_work():
    engine = make_policy_engine("steal-one", workers=4, numa_nodes=2)
    bag = TaskBag()
    for i in range(4):
        bag.add(f"a{i}", 1.0, affinity=0)  # node 0 (workers 0,1)
    for i in range(4):
        bag.add(f"b{i}", 1.0, affinity=2)  # node 1 (workers 2,3)
    execution = engine.run(bag, "p")
    assert execution.steals > 0
    # Each empty worker has a same-node victim the whole run through, so
    # no steal ever crosses the node boundary.
    assert execution.remote_steals == 0


def test_remote_steals_pay_the_numa_premium():
    cost = CostModel(gc_numa_remote_premium=0.5)
    flat = make_policy_engine(
        "steal-one", workers=2, numa_nodes=1, cost=cost
    ).run(skewed_bag(n=8, cost=1.0), "p")
    numa = make_policy_engine(
        "steal-one", workers=2, numa_nodes=2, cost=cost
    ).run(skewed_bag(n=8, cost=1.0), "p")
    # All work sits on worker 0, so worker 1's steals are forced remote
    # under two nodes.
    assert flat.remote_steals == 0
    assert numa.remote_steals == numa.steals > 0
    # Every steal charges the base cost; remote ones add the premium.
    total_steal_time = sum(ws.steal_seconds for ws in numa.per_worker)
    assert total_steal_time == pytest.approx(
        numa.steals * cost.gc_steal_cost + numa.remote_steals * 0.5
    )


def test_numa_nodes_clamped_to_worker_count():
    engine = GCTaskEngine(
        Clock(), CostModel(), workers=2, seed=7, numa_nodes=8
    )
    assert engine.numa_nodes == 2


# ======================================================================
# Adaptive batch sizing (tentpole: feedback controller)
# ======================================================================
def adaptive_config(**kwargs):
    from repro.config import GCEngineConfig

    kwargs.setdefault("adaptive_batching", True)
    return GCEngineConfig(**kwargs)


def summary_with(workers=8, imbalance=1.0, serial=1.0, overhead=0.0,
                 tasks=100, parallel=1.0):
    from repro.gc.engine.engine import ParallelCycleSummary

    return ParallelCycleSummary(
        workers=workers, tasks=tasks, serial_seconds=serial,
        parallel_seconds=parallel, overhead_seconds=overhead,
        imbalance=imbalance,
    )


def test_batch_controller_disabled_is_inert():
    from repro.gc.engine import BatchController

    ctl = BatchController(adaptive_config(adaptive_batching=False))
    assert not ctl.enabled
    assert ctl.observe(summary_with(imbalance=9.0)) == "hold"
    assert ctl.scale == 1.0
    assert ctl.scan_batch_objects == ctl.config.scan_batch_objects


def test_batch_controller_shrinks_on_imbalance_and_clamps():
    from repro.gc.engine import BatchController

    cfg = adaptive_config(scan_batch_objects=32, min_batch_scale=0.25)
    ctl = BatchController(cfg)
    assert ctl.observe(summary_with(imbalance=2.0)) == "shrink"
    assert ctl.scale == 0.5
    assert ctl.scan_batch_objects == 16
    assert ctl.observe(summary_with(imbalance=2.0)) == "shrink"
    assert ctl.scale == 0.25
    # Clamped at min_batch_scale: no further shrink.
    assert ctl.observe(summary_with(imbalance=2.0)) == "hold"
    assert ctl.scale == 0.25
    assert ctl.shrinks == 2


def test_batch_controller_grows_back_on_dispatch_overhead():
    from repro.gc.engine import BatchController

    ctl = BatchController(adaptive_config())
    ctl.observe(summary_with(imbalance=2.0))
    assert ctl.scale == 0.5
    # overhead_share = 0.4/(1.0+0.4) ~ 0.29 > 0.15 default threshold.
    action = ctl.observe(summary_with(serial=1.0, overhead=0.4))
    assert action == "grow"
    assert ctl.scale == 1.0
    # At full scale, overhead alone never grows past 1.0.
    assert ctl.observe(summary_with(serial=1.0, overhead=0.4)) == "hold"
    assert ctl.grows == 1


def test_batch_controller_never_shrinks_single_worker_cycles():
    from repro.gc.engine import BatchController

    ctl = BatchController(adaptive_config())
    assert ctl.observe(summary_with(workers=1, imbalance=9.0)) == "hold"
    assert ctl.scale == 1.0


def test_adaptive_batching_reduces_wide_pool_imbalance():
    """The acceptance gate: at 8+ workers the controller must beat the
    static batch sizes on the churn workload."""
    points = gc_scaling.run_adaptive_comparison((8,), batches=24)
    p = points[0]
    assert p.shrinks > 0 and p.final_scale < 1.0
    assert p.adaptive_imbalance < p.static_imbalance
    assert p.adaptive_pause_s <= p.static_pause_s


def test_adaptive_runs_stay_deterministic():
    a = gc_scaling.run_churn(8, batches=8, adaptive=True)
    b = gc_scaling.run_churn(8, batches=8, adaptive=True)
    assert gc_timeline_csv(a.collector.stats.cycles) == gc_timeline_csv(
        b.collector.stats.cycles
    )
    scales = [c.batch_scale for c in a.collector.stats.cycles]
    assert scales == [c.batch_scale for c in b.collector.stats.cycles]


# ======================================================================
# Per-phase engine stats (satellite: surfaced in CSV + chrome trace)
# ======================================================================
def test_cycles_carry_per_phase_engine_stats():
    vm = gc_scaling.run_churn(2, batches=6)
    cycles = [c for c in vm.collector.stats.cycles if c.tasks_executed]
    assert cycles
    for cycle in cycles:
        assert cycle.engine_phases
        for rec in cycle.engine_phases:
            assert set(rec) == {
                "phase", "workers", "tasks", "steals", "remote_steals",
                "serial_s", "critical_s", "hidden_s", "idle_s",
                "imbalance",
            }
        assert sum(r["tasks"] for r in cycle.engine_phases) == (
            cycle.tasks_executed
        )
        assert sum(r["steals"] for r in cycle.engine_phases) == cycle.steals


def test_timeline_csv_has_engine_phase_columns():
    vm = gc_scaling.run_churn(2, batches=6)
    text = gc_timeline_csv(vm.collector.stats.cycles)
    header = text.splitlines()[0].split(",")
    for col in (
        "remote_steals", "batch_scale", "concurrent_hidden_s",
        "remark_pause_s", "engine_phases",
    ):
        assert col in header
    assert "minor-copy:" in text


def test_chrome_trace_other_data_has_phase_stats():
    vm = gc_scaling.run_churn(2, batches=6, trace=True)
    doc = json.loads(chrome_trace_json(vm.collector.engine))
    other = doc["otherData"]
    assert other["stealPolicy"] == "steal-one"
    assert other["numaNodes"] == 1
    assert other["remoteSteals"] == 0
    assert other["concurrentHidden"] == 0.0  # PS has no concurrent phase
    stats = other["phaseStats"]
    assert len(stats) == vm.collector.engine.total_phases
    assert sum(r["tasks"] for r in stats) == vm.collector.engine.total_tasks


# ======================================================================
# G1 concurrent-marking series (tentpole: hidden share vs mutator work)
# ======================================================================
def test_g1_marking_hidden_share_rises_with_mutator_work():
    points = gc_scaling.g1_marking_points((0, 2048), rounds=2)
    by_label = {p.label: p for p in points}
    low = by_label["ops=0"]
    high = by_label["ops=2048"]
    stress = by_label["stress"]
    # Mutator-heavy rounds hide a majority of the marking...
    assert high.hidden_share > 0.5
    assert high.hidden_share > low.hidden_share
    # ...while back-to-back majors have no window to hide behind.
    assert stress.mark_critical_s > 0.0
    assert stress.hidden_share == 0.0
    # The remark is a real pause in every configuration.
    assert all(p.remark_s > 0.0 for p in points)


def test_g1_marking_series_deterministic():
    a = [p.to_dict() for p in gc_scaling.g1_marking_points((512,), rounds=2)]
    b = [p.to_dict() for p in gc_scaling.g1_marking_points((512,), rounds=2)]
    assert a == b


# ======================================================================
# TeraHeap stripe ownership bounds H2 scan parallelism (satellite)
# ======================================================================
def test_teraheap_stripes_cap_scan_parallelism():
    points = gc_scaling.teraheap_scan_points((1, 8, 16), phases=6)
    by_threads = {p.gc_threads: p for p in points}
    one, eight, sixteen = (
        by_threads[1], by_threads[8], by_threads[16]
    )
    assert one.scan_workers == 1
    # Stripe ownership: the scan phases never run wider than the stripe
    # count, no matter the thread pool.
    assert eight.scan_workers == gc_scaling.TH_STRIPES
    assert sixteen.scan_workers == gc_scaling.TH_STRIPES
    assert sixteen.scan_speedup <= gc_scaling.TH_STRIPES
    # Plateau: 8 -> 16 threads buys the H2 scan nothing...
    assert sixteen.scan_speedup == pytest.approx(eight.scan_speedup)
    # ...while the plain-PS phases of the same run keep scaling.
    assert sixteen.ps_speedup > sixteen.scan_speedup
    assert eight.scan_speedup > one.scan_speedup
