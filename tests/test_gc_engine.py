"""Task-based GC engine: scheduling, determinism, scalar-model parity."""

import json

import pytest

from repro.clock import Bucket, Clock
from repro.config import CostModel, VMConfig
from repro.devices.nvme import NVMeSSD
from repro.experiments import gc_scaling
from repro.experiments.configs import SPARK_DR2_GB, SPARK_WORKLOADS_TABLE3
from repro.frameworks.spark import CachePolicy, SparkConf, SparkContext
from repro.frameworks.spark.workloads import SPARK_WORKLOADS
from repro.gc.base import GCCycle, GCStats
from repro.gc.engine import GCTaskEngine, TaskBag, chunked_sweep
from repro.metrics import chrome_trace_json
from repro.metrics.trace import gc_timeline_csv
from repro.runtime import JavaVM
from repro.units import gb


def make_engine(workers=4, trace=False, clock=None):
    return GCTaskEngine(
        clock or Clock(), CostModel(), workers=workers, seed=7, trace=trace
    )


# ======================================================================
# Task decomposition
# ======================================================================
def test_task_bag_rejects_negative_cost():
    bag = TaskBag()
    with pytest.raises(ValueError):
        bag.add("bad", -1.0)


def test_batch_builder_emits_fixed_size_batches():
    bag = TaskBag()
    b = bag.batcher("scan", "scan", 4)
    for _ in range(10):
        b.add(0.5)
    b.flush()
    assert len(bag) == 3  # 4 + 4 + 2
    assert bag.serial_seconds == pytest.approx(5.0)
    assert [t.name for t in bag] == ["scan-0", "scan-1", "scan-2"]
    b.flush()  # idempotent on an empty builder
    assert len(bag) == 3


def test_chunked_sweep_folds_extra_costs_with_affinity():
    bag = TaskBag()
    chunked_sweep(
        bag, "cards", 10, per_item_cost=1.0, chunk_items=4,
        extra={0: 5.0, 9: 7.0},
    )
    tasks = list(bag)
    assert [t.cost for t in tasks] == [9.0, 4.0, 9.0]  # 4+5, 4, 2+7
    assert [t.affinity for t in tasks] == [0, 1, 2]
    empty = TaskBag()
    chunked_sweep(empty, "cards", 0, 1.0, 4)
    assert not empty


# ======================================================================
# Engine scheduling
# ======================================================================
def test_empty_bag_charges_nothing():
    clock = Clock()
    engine = make_engine(clock=clock)
    execution = engine.run(TaskBag(), "noop")
    assert execution.tasks == 0
    assert clock.now == 0.0


def test_single_worker_charges_serial_cost_plus_dispatch():
    clock = Clock()
    cost = CostModel()
    engine = make_engine(workers=1, clock=clock)
    bag = TaskBag()
    for i in range(5):
        bag.add(f"t{i}", 1.0)
    execution = engine.run(bag, "phase")
    expected = 5.0 + 5 * cost.gc_task_dispatch_cost
    assert clock.now == pytest.approx(expected)
    assert execution.steals == 0
    assert execution.idle_seconds == 0.0
    assert execution.imbalance == pytest.approx(1.0)


def test_workers_capped_by_task_count():
    engine = make_engine(workers=16)
    bag = TaskBag()
    bag.add("a", 1.0)
    bag.add("b", 1.0)
    execution = engine.run(bag, "phase")
    assert execution.workers == 2


def test_parallel_run_beats_serial_and_reports_lanes():
    clock = Clock()
    engine = make_engine(workers=4, clock=clock)
    bag = TaskBag()
    for i in range(32):
        bag.add(f"t{i}", 0.01)
    execution = engine.run(bag, "phase")
    assert execution.critical_path < execution.serial_seconds
    assert clock.now == pytest.approx(execution.critical_path)
    assert execution.speedup > 2.0
    assert len(execution.per_worker) == 4
    assert sum(w.tasks for w in execution.per_worker) == 32
    assert execution.imbalance >= 1.0


def test_affinity_skew_forces_steals():
    engine = make_engine(workers=4)
    bag = TaskBag()
    for i in range(16):
        bag.add(f"t{i}", 0.01, affinity=0)  # all on worker 0's deque
    execution = engine.run(bag, "phase")
    assert execution.steals > 0
    thieves = [w for w in execution.per_worker if w.index != 0]
    assert sum(w.tasks for w in thieves) > 0
    assert sum(w.steals for w in thieves) == execution.steals


def test_termination_cost_only_with_multiple_workers():
    cost = CostModel()
    c1, c2 = Clock(), Clock()
    bag1, bag2 = TaskBag(), TaskBag()
    for bag in (bag1, bag2):
        bag.add("a", 1.0)
        bag.add("b", 1.0)
    make_engine(workers=1, clock=c1).run(bag1, "p")
    make_engine(workers=2, clock=c2).run(bag2, "p")
    # Two equal tasks split perfectly across two lanes: half the busy
    # time, plus the termination protocol each worker pays.
    assert c2.now == pytest.approx(
        1.0 + cost.gc_task_dispatch_cost + cost.gc_termination_cost
    )
    assert c1.now == pytest.approx(2.0 + 2 * cost.gc_task_dispatch_cost)


def test_engine_charges_into_current_bucket():
    clock = Clock()
    engine = make_engine(workers=2, clock=clock)
    bag = TaskBag()
    bag.add("a", 1.0)
    with clock.context(Bucket.MAJOR_GC):
        engine.run(bag, "phase")
    assert clock.total(Bucket.MAJOR_GC) > 0.0
    assert clock.total(Bucket.OTHER) == 0.0


# ======================================================================
# Determinism (satellite: seeded stealing, byte-identical runs)
# ======================================================================
def test_two_runs_are_byte_identical():
    vm1 = gc_scaling.run_churn(4, batches=8, trace=True)
    vm2 = gc_scaling.run_churn(4, batches=8, trace=True)
    assert vm1.breakdown() == vm2.breakdown()
    csv1 = gc_timeline_csv(vm1.collector.stats.cycles)
    csv2 = gc_timeline_csv(vm2.collector.stats.cycles)
    assert csv1 == csv2
    trace1 = chrome_trace_json(vm1.collector.engine)
    trace2 = chrome_trace_json(vm2.collector.engine)
    assert trace1 == trace2
    assert vm1.collector.engine.total_steals > 0


def test_engine_seed_comes_from_config():
    vm = gc_scaling.run_churn(2, batches=2)
    assert vm.config.engine.seed == 0x7E2A6C


# ======================================================================
# Chrome-trace export
# ======================================================================
def test_chrome_trace_document_shape():
    vm = gc_scaling.run_churn(2, batches=6, trace=True)
    doc = json.loads(chrome_trace_json(vm.collector.engine, label="churn"))
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in meta} >= {"process_name", "thread_name"}
    assert spans, "tracing produced no task events"
    for span in spans:
        assert span["tid"] in (0, 1)
        assert span["dur"] >= 0
        assert "kind" in span["args"]
    assert doc["otherData"]["tasks"] == vm.collector.engine.total_tasks


def test_trace_disabled_by_default():
    vm = gc_scaling.run_churn(2, batches=4)
    assert vm.collector.engine.trace_events == []


# ======================================================================
# Single-thread parity with the scalar model (fig06 workload)
# ======================================================================
def _fig06_cell_vm(gc_threads: int) -> JavaVM:
    """One Figure 6 Spark-SD cell (PR, largest DRAM point)."""
    cfg = SPARK_WORKLOADS_TABLE3["PR"]
    dram = cfg.sd_drams[-1]
    heap_gb = max(dram - SPARK_DR2_GB, dram / 2)
    vm = JavaVM(
        VMConfig(
            heap_size=gb(heap_gb),
            collector="ps",
            gc_threads=gc_threads,
            page_cache_size=gb(SPARK_DR2_GB),
        )
    )
    ctx = SparkContext(
        vm,
        SparkConf(
            cache_policy=CachePolicy.SD,
            offheap_device=NVMeSSD(vm.clock),
        ),
    )
    SPARK_WORKLOADS["PR"](ctx, gb(cfg.dataset_gb), scale=0.25)
    return vm


def test_single_thread_within_5pct_of_scalar_model_on_fig06():
    """gc_threads=1: engine overhead (dispatch; no stealing, no
    termination) must keep every cycle within 5% of the pre-engine
    scalar cost model, whose pause was exactly the serial task cost."""
    vm = _fig06_cell_vm(1)
    cycles = [c for c in vm.collector.stats.cycles if c.tasks_executed]
    assert cycles, "fig06 cell ran no GC"
    for cycle in cycles:
        overhead = cycle.parallel_seconds - cycle.parallel_serial_seconds
        assert overhead >= 0.0
        scalar_duration = cycle.duration - overhead
        assert cycle.duration <= scalar_duration * 1.05
        assert cycle.steals == 0
        assert cycle.idle_seconds == 0.0
        assert cycle.imbalance == pytest.approx(1.0)


# ======================================================================
# Thread scaling (sweep shape)
# ======================================================================
def test_scaling_monotone_and_sublinear():
    points = gc_scaling.run_scaling((1, 2, 4, 8, 16), batches=16)
    by_threads = {p.gc_threads: p for p in points}
    pauses = [by_threads[t].total_pause_s for t in (1, 2, 4, 8, 16)]
    assert pauses == sorted(pauses, reverse=True)
    prev = 0.0
    for t in (2, 4, 8, 16):
        p = by_threads[t]
        assert p.pause_speedup > prev  # monotone in threads
        assert p.pause_speedup < t  # sub-linear (overheads tax lanes)
        assert len(p.worker_steals) == t
        assert len(p.worker_idle_s) == t
        prev = p.pause_speedup
    assert by_threads[1].pause_speedup == pytest.approx(1.0)
    # Wide pools steal and idle; the serial point cannot.
    assert by_threads[16].steals > 0
    assert by_threads[16].idle_s > by_threads[1].idle_s


def test_scaling_baseline_gate():
    points = gc_scaling.run_scaling((1, 2), batches=10)
    assert points[0].total_pause_s > 0.0, "churn run must trigger GC"
    payload = gc_scaling.baseline_payload(points, batches=10)
    assert gc_scaling.check_baseline(points, payload) == []
    shrunk = json.loads(json.dumps(payload))
    shrunk["points"][0]["total_pause_s"] /= 2.0
    failures = gc_scaling.check_baseline(points, shrunk)
    assert failures and "regressed" in failures[0]
    assert gc_scaling.check_baseline(points, {"points": []})


# ======================================================================
# GCStats aggregation (satellite: phase_totals / mean_time coverage)
# ======================================================================
def _cycle(kind, duration, **kwargs):
    return GCCycle(kind=kind, start_time=0.0, duration=duration, **kwargs)


def test_gcstats_phase_totals_and_mean_time():
    stats = GCStats()
    stats.record(_cycle("minor", 1.0))
    stats.record(_cycle("minor", 3.0))
    stats.record(
        _cycle("major", 10.0, phases={"marking": 6.0, "compact": 4.0})
    )
    stats.record(
        _cycle("major", 20.0, phases={"marking": 12.0, "adjust": 8.0})
    )
    assert stats.mean_time("minor") == pytest.approx(2.0)
    assert stats.mean_time("major") == pytest.approx(15.0)
    assert stats.mean_time("concurrent") == 0.0  # no such cycles
    assert stats.phase_totals() == {
        "marking": 18.0,
        "compact": 4.0,
        "adjust": 8.0,
    }


def test_gcstats_parallel_aggregates():
    stats = GCStats()
    stats.record(
        _cycle(
            "minor", 2.0, gc_threads=4, tasks_executed=10, steals=2,
            idle_seconds=0.5, imbalance=1.2,
            parallel_serial_seconds=4.0, parallel_seconds=1.5,
        )
    )
    stats.record(
        _cycle(
            "major", 6.0, gc_threads=4, tasks_executed=30, steals=4,
            idle_seconds=1.5, imbalance=1.4,
            parallel_serial_seconds=12.0, parallel_seconds=4.5,
        )
    )
    assert stats.total_tasks() == 40
    assert stats.total_tasks("minor") == 10
    assert stats.total_steals() == 6
    assert stats.total_idle("major") == pytest.approx(1.5)
    # Parallel-time-weighted: (1.2*1.5 + 1.4*4.5) / 6.0
    assert stats.mean_imbalance() == pytest.approx(1.35)
    # serial / (threads * parallel) = 16 / (4 * 6)
    assert stats.parallel_efficiency() == pytest.approx(16.0 / 24.0)
    assert stats.cycles[0].parallel_speedup == pytest.approx(4.0 / 1.5)


def test_gcstats_parallel_aggregates_single_thread_edge():
    vm = gc_scaling.run_churn(1, batches=8)
    stats = vm.collector.stats
    assert stats.cycles
    for cycle in stats.cycles:
        assert cycle.gc_threads == 1
        assert cycle.steals == 0
        assert cycle.idle_seconds == 0.0
        assert cycle.imbalance == pytest.approx(1.0)
        assert cycle.worker_busy and len(cycle.worker_busy) == 1
        assert cycle.worker_steals == [0]
    assert stats.total_steals() == 0
    assert stats.mean_imbalance() == pytest.approx(1.0)
    # Only dispatch overhead separates the engine from the serial model.
    assert 0.99 <= stats.parallel_efficiency() <= 1.0


def test_empty_stats_defaults():
    stats = GCStats()
    assert stats.mean_imbalance() == 1.0
    assert stats.parallel_efficiency() == 1.0
    assert stats.total_tasks() == 0
