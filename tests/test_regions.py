"""H2 regions: placement, metadata, liveness stats, bulk reclamation."""

import pytest

from repro.heap.object_model import HeapObject, SpaceId
from repro.teraheap.regions import (
    PER_REGION_METADATA_BYTES,
    Region,
    metadata_bytes_per_tb,
)
from repro.units import MiB


@pytest.fixture
def region():
    return Region(index=0, start=0x1000, capacity=16 * 1024)


def test_append_only_allocation(region):
    a, b = HeapObject(1000), HeapObject(2000)
    assert region.allocate(a) and region.allocate(b)
    assert a.address == 0x1000
    assert b.address == 0x1000 + 1000
    assert a.space is SpaceId.H2
    assert a.region_id == 0
    assert region.used == 3000


def test_objects_never_span_regions(region):
    big = HeapObject(region.capacity + 16)
    assert not region.allocate(big)


def test_allocation_fails_when_full(region):
    assert region.allocate(HeapObject(16 * 1024))
    assert not region.allocate(HeapObject(64))


def test_reclaim_zeroes_pointer_and_frees_objects(region):
    objs = [HeapObject(1000) for _ in range(3)]
    for o in objs:
        region.allocate(o)
    region.deps.add(5)
    region.live = True
    dropped = region.reclaim()
    assert dropped == objs
    assert region.is_empty
    assert region.deps == set()
    assert not region.live
    assert region.label is None
    assert all(o.space is SpaceId.FREED for o in objs)


def test_liveness_stats(region):
    live, dead = HeapObject(1000), HeapObject(3000)
    region.allocate(live)
    region.allocate(dead)
    live.mark_epoch = 7
    stats = region.live_object_stats(mark_epoch=7)
    assert stats.total_objects == 2
    assert stats.live_objects == 1
    assert stats.live_object_fraction == pytest.approx(0.5)
    assert stats.live_bytes == 1000
    assert stats.live_space_fraction == pytest.approx(1000 / region.capacity)
    assert stats.unused_fraction == pytest.approx(
        1 - 4000 / region.capacity
    )


def test_objects_overlapping(region):
    objs = [HeapObject(1000) for _ in range(5)]
    for o in objs:
        region.allocate(o)
    hit = region.objects_overlapping(0x1000 + 1500, 0x1000 + 2500)
    assert objs[1] in hit and objs[2] in hit
    assert objs[4] not in hit


def test_metadata_matches_paper_table5():
    # Paper Table 5: 1 MB regions -> 417 MB/TB ... halving each doubling.
    assert metadata_bytes_per_tb(1 * MiB) == pytest.approx(
        417 * MiB, rel=0.01
    )
    assert metadata_bytes_per_tb(2 * MiB) == pytest.approx(
        metadata_bytes_per_tb(1 * MiB) / 2
    )
    assert metadata_bytes_per_tb(256 * MiB) < 2.1 * MiB


def test_metadata_rejects_bad_region_size():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        metadata_bytes_per_tb(0)


def test_per_region_constant():
    assert PER_REGION_METADATA_BYTES == 417
