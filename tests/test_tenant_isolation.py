"""Tenant isolation: random interleavings across co-located VMs.

Property-based sweep of the multi-tenant invariants the server layer
depends on: each tenant owns a private :class:`HeapStore` (handles never
alias across stores, even through crash restarts), each tenant's
cross-incarnation timeline (:class:`repro.server.box.Tenant`) is
monotone, and every tenant's block-manager residency counters equal the
ground truth recomputed from its entries.
"""

from hypothesis import given, settings, strategies as st

from repro.config import GovernorConfig, TeraHeapConfig, VMConfig
from repro.errors import ConfigError
from repro.frameworks.spark import CachePolicy, SparkConf, SparkContext
from repro.heap.store import HeapStore
from repro.runtime import JavaVM
from repro.server.box import Tenant
from repro.units import KiB, gb

ACTIONS = ("alloc", "cache", "minor", "major", "restart")


def _make_tenant(index):
    """A restart-capable TeraHeap executor over a *private* store."""
    vm = JavaVM(
        VMConfig(
            heap_size=gb(2),
            teraheap=TeraHeapConfig(
                enabled=True,
                h2_size=gb(16),
                region_size=64 * KiB,
                promotion_buffer_size=32 * KiB,
                writeback_policy="commit",
            ),
            page_cache_size=gb(2),
            governor=GovernorConfig(),
        ),
        store=HeapStore(),
    )
    conf = SparkConf(cache_policy=CachePolicy.TERAHEAP, num_partitions=2)
    ctx = SparkContext(vm, conf)
    tenant = Tenant(f"t{index}", index, vm, None, 0)
    return tenant, ctx


def _check_residency(ctx):
    """Block-manager counters must match a recount of the entries."""
    bm = ctx.block_manager
    recount = {"h1": 0, "h2": 0, "offheap": 0}
    for entry in bm.entries.values():
        recount[entry.charged] += entry.charged_bytes()
    assert recount["h1"] == bm.onheap_used
    assert recount["h2"] == bm.h2_bytes
    assert recount["offheap"] == bm.offheap_bytes


def _check_aliasing(tracked, ctxs):
    stores = [ctx.vm.store for ctx in ctxs]
    # Pairwise-distinct stores: retiring/restarting one tenant must
    # never fold siblings onto a shared (or the process-default) store.
    assert len({id(store) for store in stores}) == len(stores)
    for i, handles in tracked.items():
        store = stores[i]
        for obj in handles:
            assert obj._store is store
            # Canonical-handle identity within the owning store...
            assert store.handle(obj.oid) is obj
            # ...and never across a sibling's store.
            for j, other in enumerate(stores):
                if other is store:
                    continue
                if obj.oid < len(other.handles):
                    assert other.handle(obj.oid) is not obj


@given(
    tenants=st.integers(min_value=2, max_value=4),
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.sampled_from(ACTIONS),
        ),
        min_size=1,
        max_size=24,
    ),
)
@settings(max_examples=12, deadline=None)
def test_random_interleavings_preserve_tenant_isolation(tenants, ops):
    pairs = [_make_tenant(i) for i in range(tenants)]
    boxes = [pair[0] for pair in pairs]
    ctxs = [pair[1] for pair in pairs]
    tracked = {i: [] for i in range(tenants)}
    seq = 0
    try:
        # Prime every tenant with a persisted, H2-resident block so a
        # durable image exists and restarts have state to adopt.
        for i, ctx in enumerate(ctxs):
            warm = ctx.range_rdd(32 * KiB, name=f"t{i}-warm")
            warm.persist()
            warm.evaluate()
            ctx.vm.major_gc()

        for selector, action in ops:
            i = selector % tenants
            tenant, ctx = boxes[i], ctxs[i]
            before = tenant.now
            if action == "alloc":
                obj = ctx.vm.allocate(4 * KiB, name=f"t{i}-o{seq}")
                ctx.vm.roots.add(obj)
                tracked[i].append(obj)
            elif action == "cache":
                rdd = ctx.range_rdd(32 * KiB, name=f"t{i}-r{seq}")
                rdd.persist()
                rdd.evaluate()
            elif action == "minor":
                ctx.vm.minor_gc()
            elif action == "major":
                ctx.vm.major_gc()
            elif action == "restart":
                try:
                    ctx.restart()
                except ConfigError:
                    pass  # no durable image yet: restart is a no-op
                else:
                    tenant.attach_vm(ctx.vm)
                    # The crash destroyed the incarnation's heap; its
                    # handles are dead, not transferable.
                    tracked[i] = []
            seq += 1
            # A tenant's timeline never moves backwards — not even
            # across a restart, whose successor clock starts at zero.
            assert tenant.now >= before
            _check_residency(ctx)

        _check_aliasing(tracked, ctxs)
        for ctx in ctxs:
            _check_residency(ctx)
        # Siblings' clocks are independent: stepping tenant i never
        # advanced (or rewound) anyone else's incarnation clock, which
        # the per-op monotonicity check above already pinned per tenant;
        # here we pin that every tenant still has a live, private VM.
        assert len({id(ctx.vm) for ctx in ctxs}) == tenants
    finally:
        for ctx in ctxs:
            ctx.vm.retire()
