"""Panthera and Memory-mode collectors (the NVM baselines)."""

import pytest

from repro import JavaVM, VMConfig, gb
from repro.config import PantheraConfig
from repro.devices.nvm import NVM, NVMMemoryMode
from repro.heap.object_model import SpaceId
from repro.units import KiB


def make_panthera(heap_gb=4, dram_old_gb=0.5):
    config = VMConfig(
        heap_size=gb(heap_gb),
        collector="panthera",
        panthera=PantheraConfig(
            dram_old_size=gb(dram_old_gb),
            nvm_old_size=gb(heap_gb - 1 - dram_old_gb),
            pretenure_threshold=32 * KiB,
        ),
        young_fraction=1.0 / 6.0,
    )
    vm = JavaVM(config)
    nvm = NVM(vm.clock)
    vm.old_gen_device = nvm
    vm.collector.nvm = nvm
    return vm, nvm


class TestPanthera:
    def test_pretenure_large_objects(self):
        vm, _ = make_panthera()
        big = vm.allocate(64 * KiB)
        assert big.space is SpaceId.OLD

    def test_small_objects_stay_young(self):
        vm, _ = make_panthera()
        small = vm.allocate(1024)
        assert small.space is SpaceId.EDEN

    def test_nvm_boundary_classification(self):
        vm, _ = make_panthera()
        collector = vm.collector
        inside = vm.allocate(64 * KiB)
        assert inside.space is SpaceId.OLD
        # Objects below the DRAM component boundary are not "on NVM".
        assert collector.on_nvm(inside) == (
            inside.address >= collector.nvm_boundary
        )

    def test_major_gc_charges_nvm_for_old_scan(self):
        vm, nvm = make_panthera(dram_old_gb=0.01)
        objs = [vm.allocate(64 * KiB) for _ in range(20)]
        for o in objs:
            vm.roots.add(o)
        vm.major_gc()
        assert nvm.traffic.bytes_read > 0
        assert vm.collector.nvm_objects_scanned > 0

    def test_mutator_read_of_nvm_object_pays_nvm(self):
        vm, nvm = make_panthera(dram_old_gb=0.01)
        # Fill the small DRAM component; later objects land on NVM.
        objs = [vm.allocate(64 * KiB) for _ in range(3)]
        for o in objs:
            vm.roots.add(o)
        nvm_resident = objs[-1]
        assert vm.collector.on_nvm(nvm_resident)
        before = nvm.traffic.bytes_read
        vm.read_object(nvm_resident)
        assert nvm.traffic.bytes_read > before

    def test_requires_panthera_config(self):
        from repro.gc.panthera import PantheraCollector
        from repro.heap.heap import ManagedHeap
        from repro.heap.roots import RootSet
        from repro.clock import Clock

        cfg = VMConfig(heap_size=gb(4))
        with pytest.raises(ValueError):
            PantheraCollector(
                ManagedHeap(cfg), RootSet(), Clock(), cfg, nvm=None
            )


class TestMemoryMode:
    def make_vm(self):
        return JavaVM(VMConfig(heap_size=gb(4), collector="memmode"))

    def test_device_auto_constructed(self):
        vm = self.make_vm()
        assert isinstance(vm.old_gen_device, NVMMemoryMode)

    def test_mutator_reads_blend_through_device(self):
        vm = self.make_vm()
        o = vm.allocate(8 * KiB)
        before = vm.clock.now
        vm.read_object(o)
        assert vm.clock.now > before

    def test_gc_pays_memory_mode_costs(self):
        vm = self.make_vm()
        plain = JavaVM(VMConfig(heap_size=gb(4), collector="ps"))
        for target in (vm, plain):
            roots = [target.allocate(8 * KiB) for _ in range(50)]
            for r in roots:
                target.roots.add(r)
            target.major_gc()
        mm_major = vm.clock.breakdown()["major_gc"]
        ps_major = plain.clock.breakdown()["major_gc"]
        assert mm_major > ps_major

    def test_working_set_refreshed_at_gc(self):
        vm = self.make_vm()
        vm.allocate(8 * KiB)
        vm.minor_gc()
        assert vm.old_gen_device.working_set >= 0
