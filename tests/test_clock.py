"""Clock: bucket accounting, contexts, sub-buckets, snapshots, lanes."""

import pytest

from repro.clock import Bucket, Clock, LaneSet


def test_initial_state():
    clock = Clock()
    assert clock.now == 0.0
    assert all(v == 0.0 for v in clock.breakdown().values())


def test_charge_default_bucket_is_other():
    clock = Clock()
    clock.charge(1.5)
    assert clock.total(Bucket.OTHER) == 1.5


def test_charge_explicit_bucket():
    clock = Clock()
    clock.charge(2.0, Bucket.SD_IO)
    assert clock.total(Bucket.SD_IO) == 2.0
    assert clock.total(Bucket.OTHER) == 0.0


def test_negative_charge_rejected():
    clock = Clock()
    with pytest.raises(ValueError):
        clock.charge(-1.0)


def test_context_routes_untagged_charges():
    clock = Clock()
    with clock.context(Bucket.MAJOR_GC):
        clock.charge(3.0)
    assert clock.total(Bucket.MAJOR_GC) == 3.0


def test_context_nesting():
    clock = Clock()
    with clock.context(Bucket.MINOR_GC):
        with clock.context(Bucket.SD_IO):
            clock.charge(1.0)
        clock.charge(2.0)
    assert clock.total(Bucket.SD_IO) == 1.0
    assert clock.total(Bucket.MINOR_GC) == 2.0


def test_context_restores_on_exception():
    clock = Clock()
    with pytest.raises(RuntimeError):
        with clock.context(Bucket.MAJOR_GC):
            raise RuntimeError
    clock.charge(1.0)
    assert clock.total(Bucket.OTHER) == 1.0


def test_now_sums_buckets():
    clock = Clock()
    clock.charge(1.0, Bucket.OTHER)
    clock.charge(2.0, Bucket.MAJOR_GC)
    assert clock.now == pytest.approx(3.0)


def test_sub_context_accumulates():
    clock = Clock()
    with clock.context(Bucket.MAJOR_GC):
        with clock.sub_context("marking"):
            clock.charge(1.0)
        with clock.sub_context("compact"):
            clock.charge(2.0)
    assert clock.sub_total("marking") == 1.0
    assert clock.sub_total("compact") == 2.0
    assert clock.sub_breakdown() == {"marking": 1.0, "compact": 2.0}


def test_snapshot_delta():
    clock = Clock()
    clock.charge(1.0, Bucket.OTHER)
    snap = clock.snapshot()
    clock.charge(2.0, Bucket.MINOR_GC)
    delta = snap.delta(clock)
    assert delta["minor_gc"] == pytest.approx(2.0)
    assert delta["other"] == pytest.approx(0.0)


def test_snapshot_sub_delta():
    clock = Clock()
    with clock.sub_context("x"):
        clock.charge(1.0)
    snap = clock.snapshot()
    with clock.sub_context("x"):
        clock.charge(0.5)
    assert snap.sub_delta(clock, "x") == pytest.approx(0.5)


def test_record_event():
    clock = Clock()
    clock.charge(5.0)
    clock.record_event("major_gc", 2.0)
    assert clock.events == [(5.0, "major_gc", 2.0)]


def test_breakdown_keys_match_paper():
    clock = Clock()
    assert set(clock.breakdown()) == {"other", "sd_io", "minor_gc", "major_gc", "alloc_stall"}


def test_charge_bucket_none_uses_current_context():
    clock = Clock()
    with clock.context(Bucket.MINOR_GC):
        clock.charge(1.0, None)
    assert clock.total(Bucket.MINOR_GC) == 1.0


def test_charge_unknown_bucket_rejected():
    clock = Clock()
    with pytest.raises(ValueError, match="unknown clock bucket"):
        clock.charge(1.0, "minor_gc")
    with pytest.raises(ValueError):
        clock.charge(1.0, 3)
    assert clock.now == 0.0


# ----------------------------------------------------------------------
# Multi-lane extension (the GC engine's substrate)
# ----------------------------------------------------------------------
def test_lane_set_requires_a_lane():
    with pytest.raises(ValueError):
        LaneSet(0)


def test_lane_set_critical_path_and_idle():
    lanes = LaneSet(3)
    lanes.advance(0, 2.0)
    lanes.advance(1, 1.0, kind="steal")
    lanes.advance(1, 0.5, kind="overhead")
    assert lanes.lane_time(0) == 2.0
    assert lanes.lane_time(1) == 1.5
    assert lanes.critical_path == 2.0
    assert lanes.idle(1) == pytest.approx(0.5)
    assert lanes.idle(2) == pytest.approx(2.0)
    assert lanes.total_idle == pytest.approx(2.5)


def test_lane_set_imbalance():
    lanes = LaneSet(2)
    lanes.advance(0, 3.0)
    lanes.advance(1, 1.0)
    # critical * lanes / total = 3 * 2 / 4
    assert lanes.imbalance == pytest.approx(1.5)
    assert LaneSet(2).imbalance == 1.0


def test_lane_set_rejects_bad_input():
    lanes = LaneSet(2)
    with pytest.raises(ValueError):
        lanes.advance(0, -1.0)
    with pytest.raises(ValueError):
        lanes.advance(0, 1.0, kind="sleeping")


def test_parallel_charges_critical_path_to_context():
    clock = Clock()
    with clock.context(Bucket.MINOR_GC):
        with clock.parallel(4) as lanes:
            lanes.advance(0, 1.0)
            lanes.advance(1, 2.5)
            lanes.advance(2, 0.25)
    assert clock.total(Bucket.MINOR_GC) == pytest.approx(2.5)
    assert clock.now == pytest.approx(2.5)


def test_parallel_single_lane_is_serial():
    clock = Clock()
    with clock.parallel(1) as lanes:
        lanes.advance(0, 1.0)
        lanes.advance(0, 2.0)
    assert clock.now == pytest.approx(3.0)


def test_concurrent_fully_hidden_within_budget():
    """A concurrent region whose critical path fits inside the mutator
    budget charges nothing: the marking raced (and lost to) the mutator."""
    clock = Clock()
    with clock.context(Bucket.MAJOR_GC):
        with clock.concurrent(2, budget=5.0) as lanes:
            lanes.advance(0, 2.0)
            lanes.advance(1, 1.5)
    assert lanes.hidden == pytest.approx(2.0)
    assert clock.now == 0.0
    assert clock.total(Bucket.MAJOR_GC) == 0.0


def test_concurrent_zero_budget_behaves_like_parallel():
    clock = Clock()
    with clock.context(Bucket.MAJOR_GC):
        with clock.concurrent(2, budget=0.0) as lanes:
            lanes.advance(0, 3.0)
            lanes.advance(1, 1.0)
    assert lanes.hidden == 0.0
    assert clock.total(Bucket.MAJOR_GC) == pytest.approx(3.0)


def test_concurrent_partial_budget_charges_the_overrun():
    clock = Clock()
    with clock.context(Bucket.MINOR_GC):
        with clock.concurrent(2, budget=1.25) as lanes:
            lanes.advance(0, 2.0)
    assert lanes.hidden == pytest.approx(1.25)
    assert clock.total(Bucket.MINOR_GC) == pytest.approx(0.75)
    assert clock.now == pytest.approx(0.75)


def test_concurrent_rejects_negative_budget():
    clock = Clock()
    with pytest.raises(ValueError, match="budget"):
        with clock.concurrent(2, budget=-0.1):
            pass


def test_concurrent_charges_nothing_on_exception_exit():
    clock = Clock()
    with pytest.raises(RuntimeError):
        with clock.concurrent(2, budget=0.0) as lanes:
            lanes.advance(0, 4.0)
            raise RuntimeError("crash mid-mark")
    assert clock.now == 0.0
    assert lanes.hidden == 0.0


def test_parallel_charges_nothing_on_exception_exit():
    """A parallel region aborted mid-phase (a simulated crash at a GC
    safepoint) must not charge the partial critical path: recovery
    reconstructs post-crash time from the durable image, so mutator
    time must stop at the last clean safepoint."""
    clock = Clock()
    with clock.context(Bucket.MAJOR_GC):
        clock.charge(1.0)
        with pytest.raises(RuntimeError):
            with clock.parallel(2) as lanes:
                lanes.advance(0, 5.0)
                lanes.advance(1, 2.0)
                raise RuntimeError("crash at safepoint")
    assert clock.now == pytest.approx(1.0)
    assert clock.total(Bucket.MAJOR_GC) == pytest.approx(1.0)
