"""Per-workload Giraph behaviour: activity patterns drive memory patterns."""

import pytest

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.devices.nvme import NVMeSSD
from repro.frameworks.giraph import GiraphConf, GiraphMode, GiraphJob
from repro.frameworks.giraph.programs import (
    BFSProgram,
    CDLPProgram,
    PageRankProgram,
    SSSPProgram,
    WCCProgram,
)
from repro.frameworks.giraph.workloads import GIRAPH_PROGRAMS, run_giraph
from repro.units import KiB
from repro.workloads.generators import make_graph


@pytest.fixture(scope="module")
def graph():
    return make_graph(gb(3), num_vertices=300, avg_degree=6, seed=21)


def run_job(graph, program_cls, **program_kwargs):
    vm = JavaVM(VMConfig(heap_size=gb(10), page_cache_size=gb(2)))
    conf = GiraphConf(mode=GiraphMode.OOC, device=NVMeSSD(vm.clock))
    job = GiraphJob(vm, conf, graph)
    job.load_graph()
    job.run(program_cls(graph, **program_kwargs))
    return job


def test_pagerank_sends_over_every_edge(graph):
    job = run_job(graph, PageRankProgram, iterations=3)
    # All vertices active every superstep: messages ~= edges x supersteps.
    assert job.messages_sent == graph.num_edges * 3


def test_bfs_sends_fewer_messages_than_pagerank(graph):
    pr = run_job(graph, PageRankProgram, iterations=5)
    bfs = run_job(graph, BFSProgram)
    assert bfs.messages_sent < pr.messages_sent


def test_wcc_message_volume_decays(graph):
    """WCC converges: later supersteps send fewer messages."""
    vm = JavaVM(VMConfig(heap_size=gb(10), page_cache_size=gb(2)))
    conf = GiraphConf(mode=GiraphMode.OOC, device=NVMeSSD(vm.clock))
    job = GiraphJob(vm, conf, graph)
    job.load_graph()
    prog = WCCProgram(graph)
    senders = prog.initial_senders()
    volumes = []
    for s in range(prog.max_supersteps):
        volumes.append(int(senders.sum()))
        received = prog._messages_from(senders)
        senders, done = prog.superstep(s, received, senders)
        if done:
            break
    assert volumes[-1] < volumes[0]


def test_sssp_runs_longer_than_bfs(graph):
    """Weighted relaxation needs more supersteps than hop counting."""
    bfs = run_job(graph, BFSProgram)
    sssp = run_job(graph, SSSPProgram)
    assert sssp.supersteps_run >= bfs.supersteps_run


def test_cdlp_all_active_fixed_rounds(graph):
    job = run_job(graph, CDLPProgram, iterations=4)
    assert job.supersteps_run == 4
    assert job.aggregators.get("active_vertices") == graph.num_vertices


def test_registry_matches_table4():
    assert set(GIRAPH_PROGRAMS) == {"PR", "CDLP", "WCC", "BFS", "SSSP"}


def test_edges_dominate_heap_after_load(graph):
    """Edges and messages are 'a large portion of the heap' (§5)."""
    vm = JavaVM(VMConfig(heap_size=gb(10), page_cache_size=gb(2)))
    conf = GiraphConf(mode=GiraphMode.OOC, device=NVMeSSD(vm.clock))
    job = GiraphJob(vm, conf, graph)
    job.load_graph()
    edge_bytes = sum(
        job._edge_sizes[v]
        for v in range(graph.num_vertices)
        if job.edge_roots[v] is not None
    )
    vertex_bytes = graph.num_vertices * graph.vertex_value_size
    assert edge_bytes > 5 * vertex_bytes


def test_teraheap_reads_edges_from_h2(graph):
    vm = JavaVM(
        VMConfig(
            heap_size=gb(6),
            teraheap=TeraHeapConfig(
                enabled=True, h2_size=gb(64), region_size=16 * KiB
            ),
            page_cache_size=gb(2),
        )
    )
    conf = GiraphConf(mode=GiraphMode.TERAHEAP)
    job = run_giraph(vm, conf, graph, "PR")
    # The compute phase faulted H2 pages for edge reads.
    assert vm.h2.page_cache.hits + vm.h2.page_cache.misses > 0
    assert vm.h2.objects_moved > 0
