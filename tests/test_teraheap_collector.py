"""TeraHeap-extended collector: moves, fencing, reclamation, backward refs."""

import pytest

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.errors import SegmentationFault
from repro.heap.object_model import SpaceId
from repro.teraheap.h2_card_table import CardState
from repro.units import KiB

from helpers import make_group


@pytest.fixture
def vm():
    config = VMConfig(
        heap_size=gb(8),
        teraheap=TeraHeapConfig(
            enabled=True, h2_size=gb(64), region_size=16 * KiB
        ),
        page_cache_size=gb(4),
    )
    return JavaVM(config)


def test_tagged_closure_moves_on_hint(vm):
    root, children = make_group(vm)
    vm.h2_tag_root(root, "grp")
    vm.h2_move("grp")
    vm.major_gc()
    assert root.space is SpaceId.H2
    assert all(c.space is SpaceId.H2 for c in children)
    assert root.label == "grp"


def test_without_move_hint_objects_stay(vm):
    root, children = make_group(vm)
    vm.h2_tag_root(root, "grp")
    vm.major_gc()  # no h2_move, no pressure
    assert root.space is SpaceId.OLD
    assert all(c.in_h1 for c in children)


def test_same_label_shares_regions(vm):
    root, children = make_group(vm, count=5, size=1024)
    vm.h2_tag_root(root, "grp")
    vm.h2_move("grp")
    vm.major_gc()
    regions = {c.region_id for c in children}
    assert len(regions) == 1


def test_metadata_excluded_from_closure(vm):
    meta = vm.allocate(1024, is_metadata=True, name="class-obj")
    ref = vm.allocate(1024, is_reference=True, name="weakref")
    plain = vm.allocate(1024)
    root = vm.allocate(64, refs=[meta, ref, plain])
    vm.roots.add(root)
    vm.h2_tag_root(root, "grp")
    vm.h2_move("grp")
    vm.major_gc()
    assert root.space is SpaceId.H2
    assert plain.space is SpaceId.H2
    assert meta.space is SpaceId.OLD  # excluded (Section 3.2)
    assert ref.space is SpaceId.OLD


def test_fencing_no_h2_traversal_after_move(vm):
    root, _ = make_group(vm)
    vm.h2_tag_root(root, "grp")
    vm.h2_move("grp")
    vm.major_gc()
    fenced_before = vm.collector.forward_refs_fenced
    vm.major_gc()
    # The cache-root -> H2 reference is fenced instead of traversed.
    assert vm.collector.forward_refs_fenced > fenced_before


def test_dead_region_reclaimed_in_bulk(vm):
    root, children = make_group(vm)
    vm.h2_tag_root(root, "grp")
    vm.h2_move("grp")
    vm.major_gc()
    vm.roots.remove(root)
    vm.major_gc()
    assert vm.h2.regions_reclaimed > 0
    assert root.space is SpaceId.FREED
    assert all(c.space is SpaceId.FREED for c in children)


def test_live_region_not_reclaimed(vm):
    root, _ = make_group(vm)
    vm.h2_tag_root(root, "grp")
    vm.h2_move("grp")
    vm.major_gc()
    vm.major_gc()
    assert vm.h2.regions_reclaimed == 0
    assert root.space is SpaceId.H2


def test_backward_reference_keeps_h1_object_alive(vm):
    stay = vm.allocate(1024, name="h1-target")
    root = vm.allocate(64, refs=[stay])
    vm.roots.add(root)
    vm.h2_tag_root(root, "grp")
    # The H1 target is independently pinned so it is NOT part of the
    # closure... it is reachable only through the H2 object afterwards.
    stay.is_metadata = True  # exclude from the closure (stays in H1)
    vm.h2_move("grp")
    vm.major_gc()
    assert root.space is SpaceId.H2
    assert stay.space is SpaceId.OLD
    # Now the only path to `stay` is H2 -> H1 (a backward reference).
    vm.major_gc()
    assert stay.space is SpaceId.OLD  # kept alive via the H2 card table


def test_backward_reference_card_marked(vm):
    stay = vm.allocate(1024)
    stay.is_metadata = True
    root = vm.allocate(64, refs=[stay])
    vm.roots.add(root)
    vm.h2_tag_root(root, "grp")
    vm.h2_move("grp")
    vm.major_gc()
    states = [s for _, s in vm.h2.card_table.iter_states()]
    assert states  # at least one non-clean card tracks root -> stay


def test_h2_mutator_update_dirties_card(vm):
    root, _ = make_group(vm)
    vm.h2_tag_root(root, "grp")
    vm.h2_move("grp")
    vm.major_gc()
    target = vm.allocate(256)
    vm.roots.add(target)
    vm.write_ref(root, target)  # mutator updates an H2 object
    idx = vm.h2.card_table.card_index(root.address)
    assert vm.h2.card_table.state(idx) is CardState.DIRTY


def test_minor_gc_honours_h2_backward_refs(vm):
    root, _ = make_group(vm)
    vm.h2_tag_root(root, "grp")
    vm.h2_move("grp")
    vm.major_gc()
    young = vm.allocate(512, name="young-target")
    vm.write_ref(root, young)  # H2 -> young H1 backward reference
    vm.minor_gc()
    assert young.space is not SpaceId.FREED


def test_high_threshold_moves_without_hint():
    config = VMConfig(
        heap_size=gb(2),
        teraheap=TeraHeapConfig(
            enabled=True,
            h2_size=gb(64),
            region_size=16 * KiB,
            high_threshold=0.30,
            low_threshold=0.15,
        ),
        page_cache_size=gb(1),
    )
    vm = JavaVM(config)
    root, children = make_group(vm, count=110, size=8 * KiB)
    vm.h2_tag_root(root, "grp")  # tagged but never h2_move()d
    vm.major_gc()
    assert vm.collector.policy.pressure_transfers >= 1
    assert root.space is SpaceId.H2


def test_freed_h2_object_access_is_segfault(vm):
    root, children = make_group(vm)
    vm.h2_tag_root(root, "grp")
    vm.h2_move("grp")
    vm.major_gc()
    vm.roots.remove(root)
    vm.major_gc()
    with pytest.raises(SegmentationFault):
        vm.read_object(children[0])


def test_moved_bytes_accounted(vm):
    root, children = make_group(vm, count=10, size=2048)
    expected = root.size + sum(c.size for c in children)
    vm.h2_tag_root(root, "grp")
    vm.h2_move("grp")
    vm.major_gc()
    assert vm.h2.bytes_moved == expected
    cycle = vm.collector.stats.cycles[-1]
    assert cycle.moved_to_h2_bytes == expected


def test_h2_read_goes_through_mapping(vm):
    root, children = make_group(vm)
    vm.h2_tag_root(root, "grp")
    vm.h2_move("grp")
    vm.major_gc()
    cache = vm.h2.page_cache
    before = cache.hits + cache.misses
    vm.read_object(children[0])
    # The read faults through the page cache (freshly written pages may
    # still be resident and hit).
    assert cache.hits + cache.misses > before


def test_h2_read_cold_cache_hits_device(vm):
    root, children = make_group(vm)
    vm.h2_tag_root(root, "grp")
    vm.h2_move("grp")
    vm.major_gc()
    # Evict everything (e.g. other I/O displaced the cache).
    vm.h2.page_cache.invalidate(list(vm.h2.page_cache._pages))
    before = vm.h2.device.traffic.bytes_read
    vm.read_object(children[0])
    assert vm.h2.device.traffic.bytes_read > before


def test_two_groups_reclaim_independently(vm):
    root_a, _ = make_group(vm, name="a")
    root_b, _ = make_group(vm, name="b")
    vm.h2_tag_root(root_a, "a")
    vm.h2_tag_root(root_b, "b")
    vm.h2_move("a")
    vm.h2_move("b")
    vm.major_gc()
    vm.roots.remove(root_a)
    vm.major_gc()
    assert root_a.space is SpaceId.FREED
    assert root_b.space is SpaceId.H2
