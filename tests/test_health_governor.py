"""Device-health watchdog, H2 governor circuit breaker, backpressure."""

import pytest

from repro.clock import Bucket, Clock
from repro.config import GovernorConfig, TeraHeapConfig, VMConfig
from repro.devices.health import (
    DeviceHealthMonitor,
    DeviceState,
    HealthConfig,
)
from repro.errors import DeviceIOError, OutOfMemoryError
from repro.faults.events import ResilienceLog
from repro.faults.plan import FaultConfig
from repro.faults.policy import RetryPolicy
from repro.frameworks.spark.block_manager import BlockManager
from repro.frameworks.spark.conf import CachePolicy, SparkConf
from repro.frameworks.spark.rdd import MaterializedPartition
from repro.runtime import JavaVM
from repro.teraheap.governor import CircuitState, H2Governor
from repro.teraheap.thresholds import ThresholdPolicy
from repro.units import KiB, gb


def make_monitor(**kw):
    return DeviceHealthMonitor(Clock(), HealthConfig(**kw))


def feed(monitor, n, ratio, device="nvme", nbytes=4096):
    state = None
    for _ in range(n):
        state = monitor.observe(
            device, "write", nbytes, actual_s=ratio * 1e-4, nominal_s=1e-4
        )
    return state


class TestDeviceHealthMonitor:
    def test_clean_ops_stay_healthy(self):
        m = make_monitor()
        assert feed(m, 20, 1.0) is DeviceState.HEALTHY
        assert m.transitions == []
        assert m.slo_violations() == 0

    def test_ratio_ewma_escalates_to_degraded(self):
        # One 2x op lifts the EWMA to 1.3 >= degraded_ratio 1.25.
        m = make_monitor()
        assert feed(m, 1, 2.0) is DeviceState.DEGRADED
        assert m.ewma_ratio("nvme") == pytest.approx(1.3)

    def test_violation_streak_forces_brownout(self):
        # Ratio 1.8 violates the 1.75 SLO but its EWMA stays below the
        # 1.9 brownout ratio for the first ops: the 4-violation streak
        # is what must escalate.
        m = make_monitor()
        assert feed(m, 4, 1.8) is DeviceState.BROWNOUT
        assert m.ewma_ratio("nvme") < 1.9
        assert m.slo_violations("nvme") == 4

    def test_io_error_counts_as_violation(self):
        m = make_monitor()
        for _ in range(4):
            state = m.observe_error("nvme", "read")
        assert state is DeviceState.BROWNOUT
        assert m.errors == 4

    def test_recovery_is_hysteretic_one_step_at_a_time(self):
        m = make_monitor(recovery_ops=8)
        feed(m, 4, 1.8)  # -> BROWNOUT
        assert feed(m, 8, 1.0) is DeviceState.DEGRADED
        assert feed(m, 8, 1.0) is DeviceState.HEALTHY
        # Never a direct BROWNOUT -> HEALTHY jump.
        hops = [(t.old, t.new) for t in m.transitions]
        assert (DeviceState.BROWNOUT, DeviceState.HEALTHY) not in hops

    def test_escalation_is_immediate_despite_clean_history(self):
        m = make_monitor()
        feed(m, 50, 1.0)
        assert feed(m, 4, 5.0) is DeviceState.BROWNOUT

    def test_worst_state_across_devices(self):
        m = make_monitor()
        feed(m, 4, 1.0, device="a")
        feed(m, 1, 2.0, device="b")
        assert m.state_of("a") is DeviceState.HEALTHY
        assert m.state_of("b") is DeviceState.DEGRADED
        assert m.state is DeviceState.DEGRADED

    def test_digest_is_deterministic(self):
        runs = []
        for _ in range(2):
            m = make_monitor()
            feed(m, 4, 1.8)
            feed(m, 16, 1.0)
            runs.append(m.digest())
        assert runs[0] == runs[1]
        assert "healthy->brownout" in runs[0] or "->brownout" in runs[0]


def make_governor(**kw):
    clock = Clock()
    monitor = DeviceHealthMonitor(clock, HealthConfig())
    cfg = GovernorConfig(**kw)
    return H2Governor(cfg, monitor, clock), monitor, clock


def brownout(monitor):
    for _ in range(4):
        monitor.observe("nvme", "write", 4096, 2e-3, 1e-4)


def recover(monitor):
    for _ in range(16):
        monitor.observe("nvme", "write", 4096, 1e-4, 1e-4)


class TestH2Governor:
    def test_brownout_trips_open(self):
        gov, monitor, _ = make_governor()
        assert gov.state is CircuitState.CLOSED
        brownout(monitor)
        assert gov.state is CircuitState.OPEN
        assert gov.trips == 1
        assert gov.blocks_h2_caching()

    def test_open_halts_unhinted_and_caps_hinted(self):
        gov, monitor, _ = make_governor(open_hinted_cap=0)
        brownout(monitor)
        allow, scale, hinted = gov.transfer_caps()
        assert not allow
        assert scale == 0.0
        assert hinted == 0

    def test_degraded_scales_budget(self):
        gov, monitor, _ = make_governor(degraded_budget_scale=0.5)
        monitor.observe("nvme", "write", 4096, 2e-4, 1e-4)  # EWMA 1.3
        assert gov.state is CircuitState.DEGRADED
        allow, scale, hinted = gov.transfer_caps()
        assert allow
        assert scale == 0.5
        assert hinted is None

    def test_probe_after_backoff_closes_via_degraded(self):
        gov, monitor, clock = make_governor(
            probe_backoff=1e-3, probe_bytes=64 * KiB, close_streak=2
        )
        brownout(monitor)
        # Before the backoff expires: no probe budget.
        _, _, hinted = gov.transfer_caps()
        assert hinted == int(gov.config.open_hinted_cap)
        recover(monitor)  # device healthy again, circuit still OPEN
        assert gov.state is CircuitState.OPEN
        clock.charge(2e-3)
        _, _, hinted = gov.transfer_caps()
        assert hinted == 64 * KiB
        assert gov.probes == 1
        gov.note_transfer_result(64 * KiB, denied=0)
        assert gov.state is CircuitState.DEGRADED
        assert gov.probe_successes == 1
        # close_streak clean cycles re-close fully.
        gov.note_transfer_result(128 * KiB, denied=0)
        assert gov.state is CircuitState.CLOSED

    def test_probe_failure_backs_off_exponentially(self):
        gov, monitor, clock = make_governor(
            probe_backoff=1e-3, probe_backoff_factor=2.0
        )
        brownout(monitor)
        clock.charge(2e-3)
        gov.transfer_caps()
        gov.note_transfer_result(0, denied=3)
        assert gov.state is CircuitState.OPEN
        assert gov.probe_failures == 1
        assert gov._backoff == pytest.approx(2e-3)

    def test_denial_while_degraded_trips(self):
        gov, monitor, _ = make_governor()
        monitor.observe("nvme", "write", 4096, 2e-4, 1e-4)
        assert gov.state is CircuitState.DEGRADED
        gov.note_transfer_result(0, denied=1)
        assert gov.state is CircuitState.OPEN

    def test_emergency_gate_needs_open_and_watermark(self):
        gov, monitor, _ = make_governor(emergency_watermark=0.85)
        assert not gov.emergency_active(0.99)
        brownout(monitor)
        assert not gov.emergency_active(0.5)
        assert gov.emergency_active(0.9)

    def test_timeline_digest_deterministic(self):
        digests = []
        for _ in range(2):
            gov, monitor, clock = make_governor(probe_backoff=1e-3)
            brownout(monitor)
            recover(monitor)
            clock.charge(2e-3)
            gov.transfer_caps()
            gov.note_transfer_result(1024, denied=0)
            digests.append(gov.timeline_digest())
        assert digests[0] == digests[1]


class _CapsStub:
    """A governor stand-in returning fixed transfer caps."""

    def __init__(self, caps):
        self.caps = caps

    def transfer_caps(self):
        return self.caps


class TestThresholdPolicyGovernor:
    def test_open_circuit_halts_pressure_transfer(self):
        policy = ThresholdPolicy(
            heap_capacity=1000, governor=_CapsStub((False, 0.0, 128))
        )
        decision = policy.decide(900)  # above the high threshold
        assert not decision.move_unhinted
        assert decision.unhinted_budget == 0
        assert decision.hinted_budget == 128
        assert policy.governor_halts == 1
        assert "circuit open" in decision.reason

    def test_degraded_circuit_scales_budget(self):
        policy = ThresholdPolicy(
            heap_capacity=1000, governor=_CapsStub((True, 0.5, None))
        )
        decision = policy.decide(900)
        assert decision.move_unhinted
        # raw budget: live 900 - low 500 = 400, scaled by 0.5
        assert decision.unhinted_budget == 200

    def test_closed_circuit_leaves_decision_alone(self):
        governed = ThresholdPolicy(
            heap_capacity=1000, governor=_CapsStub((True, 1.0, None))
        )
        plain = ThresholdPolicy(heap_capacity=1000)
        assert governed.decide(900) == plain.decide(900)


class TestRetryJitterDeadline:
    def _run(self, config, failures_then_ok=2):
        clock = Clock()
        log = ResilienceLog()
        policy = RetryPolicy(config, clock, log)
        state = {"left": failures_then_ok}

        def op():
            if state["left"] > 0:
                state["left"] -= 1
                raise DeviceIOError("flaky", device="nvme", transient=True)
            return "ok"

        result = policy.call("write", op)
        return result, clock.now, log

    def test_jitter_is_seeded_and_deterministic(self):
        cfg = FaultConfig(seed=7, backoff_jitter=0.5)
        _, t1, _ = self._run(cfg)
        _, t2, _ = self._run(cfg)
        assert t1 == t2
        _, t3, _ = self._run(FaultConfig(seed=8, backoff_jitter=0.5))
        assert t3 != t1

    def test_jitter_zero_matches_plain_backoff(self):
        plain = FaultConfig(seed=7)
        _, t_plain, _ = self._run(plain)
        assert t_plain == pytest.approx(
            plain.backoff_base * (1 + plain.backoff_factor)
        )

    def test_deadline_exhaustion_recorded_with_reason(self):
        cfg = FaultConfig(
            seed=7, max_attempts=50, retry_deadline=3 * 1e-4,
        )
        clock = Clock()
        log = ResilienceLog()
        policy = RetryPolicy(cfg, clock, log)

        def always_fail():
            raise DeviceIOError("down", device="nvme", transient=True)

        with pytest.raises(DeviceIOError):
            policy.call("write", always_fail)
        assert log.retries[-1].success is False
        assert log.retries[-1].reason == "deadline"
        assert log.deadline_exhaustions == 1
        # The deadline bounds total charged backoff.
        assert clock.now <= cfg.retry_deadline

    def test_attempts_exhaustion_recorded_with_reason(self):
        cfg = FaultConfig(seed=7, max_attempts=3)
        clock = Clock()
        log = ResilienceLog()
        policy = RetryPolicy(cfg, clock, log)

        def always_fail():
            raise DeviceIOError("down", device="nvme", transient=True)

        with pytest.raises(DeviceIOError):
            policy.call("write", always_fail)
        assert log.retries[-1].reason == "attempts"
        assert log.deadline_exhaustions == 0


def governed_vm(heap=gb(2), **gov_kw):
    return JavaVM(
        VMConfig(
            heap_size=heap,
            teraheap=TeraHeapConfig(
                enabled=True, h2_size=gb(64), region_size=32 * KiB
            ),
            page_cache_size=gb(2),
            governor=GovernorConfig(**gov_kw),
        )
    )


class _RDDStub:
    def __init__(self, rdd_id):
        self.rdd_id = rdd_id
        self.name = f"rdd-{rdd_id}"
        self.cache_label = f"rdd-{rdd_id}"


def cache_partition(vm, bm, rdd, index, chunk=8 * KiB, chunks=3):
    def build(_):
        with vm.roots.frame() as frame:
            blobs = [
                frame.push(
                    vm.allocate(chunk, name=f"{rdd.name}-p{index}-c{i}")
                )
                for i in range(chunks)
            ]
            root = vm.allocate(256, refs=blobs, name=f"{rdd.name}-p{index}")
        return MaterializedPartition(root=root, chunks=blobs)

    return bm.get_or_compute(rdd, index, build)


def accounting_invariant(bm):
    """Every cache entry charged to exactly one bucket, sums match."""
    h1 = h2 = off = 0
    for entry in bm.entries.values():
        assert entry.charged in ("h1", "h2", "offheap")
        if entry.charged == "h1":
            h1 += entry.charged_bytes()
        elif entry.charged == "h2":
            h2 += entry.charged_bytes()
        else:
            off += entry.charged_bytes()
    assert bm.onheap_used == h1
    assert bm.h2_bytes == h2
    assert bm.offheap_bytes == off
    assert min(bm.onheap_used, bm.h2_bytes, bm.offheap_bytes) >= 0


class TestBlockManagerAccounting:
    def make(self, heap=gb(4)):
        vm = governed_vm(heap=heap)
        bm = BlockManager(
            vm,
            SparkConf(
                cache_policy=CachePolicy.TERAHEAP, storage_fraction=0.5
            ),
        )
        return vm, bm

    def test_h2_migration_moves_charge_between_buckets(self):
        vm, bm = self.make()
        rdd = _RDDStub(1)
        for i in range(3):
            cache_partition(vm, bm, rdd, i)
        accounting_invariant(bm)
        before = bm.onheap_used
        assert before > 0
        vm.major_gc()  # tagged cache groups migrate to H2
        bm.reconcile_residency()
        accounting_invariant(bm)
        assert bm.h2_bytes > 0
        assert bm.onheap_used < before
        # The total cached footprint is conserved by the migration.
        assert bm.onheap_used + bm.h2_bytes == before

    def test_shed_blocks_only_frees_h1_and_stays_consistent(self):
        vm, bm = self.make()
        rdd = _RDDStub(1)
        for i in range(2):
            cache_partition(vm, bm, rdd, i)
        vm.major_gc()
        for i in range(2, 5):
            cache_partition(vm, bm, rdd, i)
        h2_before = None
        bm.reconcile_residency()
        h2_before = bm.h2_bytes
        freed = bm.shed_blocks(1)
        accounting_invariant(bm)
        assert freed > 0
        assert bm.sheds >= 1
        assert bm.shed_bytes == freed
        assert bm.h2_bytes == h2_before  # H2-resident entries untouched

    def test_shed_then_recompute_counts_penalty(self):
        vm, bm = self.make()
        rdd = _RDDStub(1)
        cache_partition(vm, bm, rdd, 0)
        bm.shed_blocks(10 * KiB)
        assert (1, 0) not in bm.entries
        cache_partition(vm, bm, rdd, 0)
        assert bm.recomputes == 1
        accounting_invariant(bm)

    def test_evict_rdd_uncharges_all_buckets(self):
        vm, bm = self.make()
        rdd = _RDDStub(1)
        for i in range(3):
            cache_partition(vm, bm, rdd, i)
        vm.major_gc()
        bm.evict_rdd(rdd)
        assert bm.entries == {}
        assert bm.onheap_used == 0
        assert bm.h2_bytes == 0
        accounting_invariant(bm)

    def test_overflow_drop_keeps_invariant(self):
        # MEMORY_ONLY overflow forces FIFO drops on store.
        vm = governed_vm(heap=gb(4))
        bm = BlockManager(
            vm, SparkConf(cache_policy=CachePolicy.MO)
        )
        rdd = _RDDStub(1)
        for i in range(6):
            cache_partition(vm, bm, rdd, i, chunk=128 * KiB, chunks=4)
            accounting_invariant(bm)
        assert bm.drops > 0
        # A dropped partition's next access is the recompute penalty.
        cache_partition(vm, bm, rdd, 0, chunk=128 * KiB, chunks=4)
        assert bm.recomputes >= 1

    def test_open_circuit_falls_back_to_serialized_on_heap(self):
        vm, bm = self.make()
        for _ in range(4):  # ratio 2.0 ops: BROWNOUT -> circuit OPEN
            vm.health.observe("nvme", "write", 4096, 2e-4, 1e-4)
        assert vm.governor.blocks_h2_caching()
        rdd = _RDDStub(1)
        cache_partition(vm, bm, rdd, 0)
        assert bm.governor_fallbacks == 1
        entry = bm.entries[(1, 0)]
        assert entry.kind == "blob"
        assert entry.heap_blob is not None
        assert entry.charged == "h1"
        accounting_invariant(bm)


class TestEmergencyBackpressure:
    def _fill(self, vm, fraction=0.9):
        """Root objects until H1 occupancy crosses ``fraction``."""
        hoard = []
        size = 32 * KiB
        while (vm.heap.used() + size) / vm.heap.capacity < fraction:
            hoard.append(vm.roots.add(vm.allocate(size, name="pin")))
        return hoard

    def test_backpressure_sheds_and_survives(self):
        vm = governed_vm(heap=gb(2))
        for _ in range(4):
            vm.health.observe("nvme", "write", 4096, 2e-4, 1e-4)
        assert vm.governor.state is CircuitState.OPEN
        hoard = self._fill(vm)

        def shed(target):
            freed = 0
            while hoard and freed < target:
                obj = hoard.pop()
                vm.roots.remove(obj)
                freed += obj.size
            return freed

        vm.register_pressure_handler(shed)
        # Allocate pinned objects until normal collection cannot make
        # room any more; the shed handler must keep the VM alive.
        for _ in range(8):
            hoard.append(vm.roots.add(vm.allocate(32 * KiB, name="pin")))
        assert vm.alloc_stalls >= 1
        assert vm.emergency_gcs >= 1
        assert vm.clock.total(Bucket.ALLOC_STALL) > 0

    def test_exhaustion_raises_oom_with_heap_report(self):
        vm = governed_vm(heap=gb(2))
        for _ in range(4):
            vm.health.observe("nvme", "write", 4096, 2e-4, 1e-4)
        self._fill(vm)
        with pytest.raises(OutOfMemoryError) as exc:
            for _ in range(64):
                vm.roots.add(vm.allocate(32 * KiB, name="pin"))
        report = exc.value.heap_report
        assert "simulated heap report" in report
        assert "governor:" in report
        assert "backpressure:" in report

    def test_no_backpressure_when_circuit_closed(self):
        vm = governed_vm(heap=gb(2))
        assert vm.governor.state is CircuitState.CLOSED
        self._fill(vm)
        with pytest.raises(OutOfMemoryError):
            for _ in range(64):
                vm.roots.add(vm.allocate(32 * KiB, name="pin"))
        assert vm.alloc_stalls == 0
