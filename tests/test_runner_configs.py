"""The experiment runner builds each paper system correctly."""

import pytest

from repro.devices.nvm import NVM, NVMMemoryMode
from repro.devices.nvme import NVMeSSD
from repro.experiments.configs import (
    GIRAPH_WORKLOADS_TABLE4,
    SPARK_DR2_GB,
    SPARK_WORKLOADS_TABLE3,
)
from repro.experiments.runner import (
    GIRAPH_H2_REGION,
    SPARK_H2_REGION,
    build_giraph_vm,
    build_spark_vm,
)
from repro.frameworks.spark.conf import CachePolicy
from repro.units import gb


CFG = SPARK_WORKLOADS_TABLE3["PR"]


def test_spark_sd_uses_ps_and_sd_policy():
    vm, ctx = build_spark_vm("spark-sd", 80, CFG)
    assert vm.collector.name == "ps"
    assert ctx.conf.cache_policy is CachePolicy.SD
    assert vm.h2 is None
    assert vm.config.heap_size == gb(80 - SPARK_DR2_GB)


def test_spark_sd11_uses_jdk11_collector():
    vm, _ = build_spark_vm("spark-sd11", 80, CFG)
    assert vm.collector.name == "ps11"


def test_spark_g1():
    vm, _ = build_spark_vm("spark-g1", 80, CFG)
    assert vm.collector.name == "g1"


def test_teraheap_vm_has_h2_on_requested_device():
    vm, ctx = build_spark_vm("teraheap", 80, CFG, device_kind="nvm")
    assert vm.h2 is not None
    assert isinstance(vm.h2.device, NVM)
    assert vm.h2.config.region_size == SPARK_H2_REGION
    assert ctx.conf.cache_policy is CachePolicy.TERAHEAP


def test_teraheap_nvme_default():
    vm, _ = build_spark_vm("teraheap", 80, CFG)
    assert isinstance(vm.h2.device, NVMeSSD)


def test_spark_mo_memmode_and_fitting_heap():
    vm, ctx = build_spark_vm("spark-mo", 80, CFG)
    assert vm.collector.name == "ps-memmode"
    assert isinstance(vm.old_gen_device, NVMMemoryMode)
    assert ctx.conf.cache_policy is CachePolicy.MO
    # Heap sized so the memory store never evicts.
    assert vm.config.heap_size * 0.6 >= gb(CFG.dataset_gb)


def test_panthera_layout():
    vm, ctx = build_spark_vm("panthera", 16, CFG, device_kind="nvm")
    assert vm.collector.name == "panthera"
    assert vm.collector.nvm is not None
    assert vm.config.young_fraction == pytest.approx(1 / 6)
    assert vm.heap.pretenure_threshold is not None


def test_ml_workloads_get_huge_pages():
    lr_cfg = SPARK_WORKLOADS_TABLE3["LR"]
    vm, _ = build_spark_vm("teraheap", 70, lr_cfg)
    assert vm.h2.mapping.huge_pages
    vm, _ = build_spark_vm("teraheap", 80, CFG)  # PR: regular pages
    assert not vm.h2.mapping.huge_pages


def test_giraph_dram_split_follows_table4():
    cfg = GIRAPH_WORKLOADS_TABLE4["PR"]
    vm, conf = build_giraph_vm("giraph-th", 85, cfg)
    expected_h1 = 85 * cfg.th_h1_gb / (cfg.th_h1_gb + cfg.th_dr2_gb)
    assert vm.config.heap_size == pytest.approx(gb(expected_h1), rel=0.01)
    assert vm.h2.config.region_size == GIRAPH_H2_REGION
    vm, conf = build_giraph_vm("giraph-ooc", 85, cfg)
    expected_heap = 85 * cfg.ooc_heap_gb / (cfg.ooc_heap_gb + cfg.ooc_dr2_gb)
    assert vm.config.heap_size == pytest.approx(gb(expected_heap), rel=0.01)


def test_giraph_overrides_reach_both_configs():
    cfg = GIRAPH_WORKLOADS_TABLE4["PR"]
    vm, conf = build_giraph_vm(
        "giraph-th", 85, cfg, teraheap_overrides={"use_move_hint": False}
    )
    assert not vm.config.teraheap.use_move_hint
    assert not conf.use_move_hint


def test_th_on_nvm_is_faster_than_nvme_for_streaming():
    """App Direct NVM has no page-granularity amplification and higher
    bandwidth, so TeraHeap's H2 reads cost less than on NVMe."""
    from repro.experiments.runner import run_spark_workload

    cfg = SPARK_WORKLOADS_TABLE3["LR"]
    nvme = run_spark_workload("LR", "teraheap", 70, cfg, scale=0.3)
    nvm = run_spark_workload(
        "LR", "teraheap", 70, cfg, device_kind="nvm", scale=0.3
    )
    assert nvm.total < nvme.total
