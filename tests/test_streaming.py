"""Block-streaming executor: budgets, backpressure, spills, satellites."""

import pytest

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.clock import Bucket
from repro.config import GovernorConfig
from repro.experiments import streamscale
from repro.frameworks.spark import (
    BlockManager,
    CachePolicy,
    SparkConf,
    SparkContext,
    StreamingExecutor,
)
from repro.frameworks.spark.rdd import MaterializedPartition
from repro.frameworks.spark.shuffle import ShuffleManager
from repro.metrics.chrome_trace import streaming_counter_events
from repro.metrics.trace import streaming_blocks_csv
from repro.units import KiB


def make_ctx(
    policy=CachePolicy.TERAHEAP,
    heap=gb(4),
    partitions=4,
    max_inflight_blocks=4,
    target_block_bytes=32 * KiB,
    governed=False,
):
    thc = (
        TeraHeapConfig(
            enabled=True,
            h2_size=gb(32),
            region_size=64 * KiB,
            promotion_buffer_size=32 * KiB,
            writeback_policy="commit",
        )
        if policy is CachePolicy.TERAHEAP
        else TeraHeapConfig()
    )
    vm = JavaVM(
        VMConfig(
            heap_size=heap,
            teraheap=thc,
            page_cache_size=gb(4),
            governor=GovernorConfig() if governed else None,
        )
    )
    conf = SparkConf(
        cache_policy=policy,
        num_partitions=partitions,
        max_inflight_blocks=max_inflight_blocks,
        target_block_bytes=target_block_bytes,
    )
    return SparkContext(vm, conf)


def build_chain(ctx, input_bytes=gb(1), persist_top=True):
    src = ctx.range_rdd(input_bytes, compute_ops_per_chunk=64, name="src")
    mid = src.map(64, name="mid")
    top = mid.map(64, name="top")
    if persist_top:
        top.persist()
    return top


def trip_circuit(vm):
    for _ in range(4):  # ratio 2.0 ops: BROWNOUT -> circuit OPEN
        vm.health.observe("nvme", "write", 4096, 2e-4, 1e-4)
    assert vm.governor.blocks_h2_caching()


class TestStreamingExecutor:
    def test_inflight_never_exceeds_budget(self):
        ctx = make_ctx(max_inflight_blocks=2)
        top = build_chain(ctx)
        result = StreamingExecutor(ctx).run(top)
        assert result.peak_inflight_bytes <= ctx.conf.inflight_budget_bytes
        assert result.peak_inflight_bytes > 0
        assert result.forced_admissions == 0

    def test_value_parity_with_evaluate(self):
        whole = build_chain(make_ctx()).evaluate()
        ctx = make_ctx()
        top = build_chain(ctx)
        result = StreamingExecutor(ctx).run(top)
        assert result.total_bytes == whole

    def test_value_parity_unpersisted(self):
        whole = build_chain(make_ctx(), persist_top=False).evaluate()
        ctx = make_ctx()
        top = build_chain(ctx, persist_top=False)
        assert StreamingExecutor(ctx).run(top).total_bytes == whole

    def test_all_frames_closed_and_inflight_zero_at_end(self):
        ctx = make_ctx(max_inflight_blocks=2)
        top = build_chain(ctx)
        executor = StreamingExecutor(ctx)
        result = executor.run(top)
        assert result.inflight_bytes == 0
        assert executor._open_frames == []

    def test_persisted_partitions_reach_block_manager(self):
        ctx = make_ctx()
        top = build_chain(ctx)
        StreamingExecutor(ctx).run(top)
        bm = ctx.block_manager
        for index in range(top.num_partitions):
            assert (top.rdd_id, index) in bm.entries

    def test_tight_budget_spills_to_h2_and_unspills(self):
        # 8 blocks per partition under a 2-block budget: the persisted
        # outputs must spill, and assembly must read every one back.
        ctx = make_ctx(max_inflight_blocks=2)
        top = build_chain(ctx)
        result = StreamingExecutor(ctx).run(top)
        assert result.spills_h2 > 0
        assert result.spills_serialized == 0
        assert result.unspills == result.spills
        assert result.backpressure_stalls > 0
        assert ctx.vm.clock.total(Bucket.ALLOC_STALL) > 0

    def test_open_circuit_spills_serialized_on_heap(self):
        ctx = make_ctx(max_inflight_blocks=2, governed=True)
        trip_circuit(ctx.vm)
        top = build_chain(ctx)
        result = StreamingExecutor(ctx).run(top)
        assert result.spills_serialized > 0
        assert result.spills_h2 == 0
        assert result.unspills == result.spills

    def test_deterministic(self):
        def run_once():
            ctx = make_ctx(max_inflight_blocks=2)
            result = StreamingExecutor(ctx).run(build_chain(ctx))
            return (
                ctx.vm.clock.now,
                result.total_bytes,
                result.blocks,
                result.spills,
                result.backpressure_stalls,
                result.peak_inflight_bytes,
            )

        assert run_once() == run_once()

    def test_evaluate_streaming_action(self):
        whole = build_chain(make_ctx()).evaluate()
        ctx = make_ctx()
        assert build_chain(ctx).evaluate_streaming() == whole

    def test_block_rows_and_counter_samples(self):
        ctx = make_ctx(max_inflight_blocks=2)
        result = StreamingExecutor(ctx).run(build_chain(ctx))
        assert len(result.block_rows) == result.blocks
        fates = {row["fate"] for row in result.block_rows}
        assert fates <= {"persisted", "consumed", "spilled-h2", "spilled-ser"}
        times = [t for t, _, _, _ in result.counter_samples]
        assert times == sorted(times)
        rows = streaming_blocks_csv(result).strip().splitlines()
        assert len(rows) == result.blocks + 2  # header + totals
        events = streaming_counter_events(result)
        assert len(events) == len(result.counter_samples)
        assert all(e["ph"] == "C" for e in events)

    def test_streamscale_smoke(self):
        assert streamscale.main(["--smoke", "--check"]) == 0


# ---------------------------------------------------------------------
# Satellite: pinned entries must survive every eviction path
# ---------------------------------------------------------------------
class _RDDStub:
    def __init__(self, rdd_id):
        self.rdd_id = rdd_id
        self.name = f"rdd-{rdd_id}"
        self.cache_label = f"rdd-{rdd_id}"


def cache_partition(vm, bm, rdd, index, chunk=128 * KiB, chunks=4):
    def build(_):
        with vm.roots.frame() as frame:
            blobs = [
                frame.push(
                    vm.allocate(chunk, name=f"{rdd.name}-p{index}-c{i}")
                )
                for i in range(chunks)
            ]
            root = vm.allocate(256, refs=blobs, name=f"{rdd.name}-p{index}")
        return MaterializedPartition(root=root, chunks=blobs)

    return bm.get_or_compute(rdd, index, build)


def accounting_invariant(bm):
    h1 = h2 = off = 0
    for entry in bm.entries.values():
        assert entry.charged in ("h1", "h2", "offheap")
        if entry.charged == "h1":
            h1 += entry.charged_bytes()
        elif entry.charged == "h2":
            h2 += entry.charged_bytes()
        else:
            off += entry.charged_bytes()
    assert bm.onheap_used == h1
    assert bm.h2_bytes == h2
    assert bm.offheap_bytes == off


def plain_vm(heap=gb(4), governed=False):
    return JavaVM(
        VMConfig(
            heap_size=heap,
            teraheap=TeraHeapConfig(
                enabled=True, h2_size=gb(32), region_size=64 * KiB
            ),
            page_cache_size=gb(4),
            governor=GovernorConfig() if governed else None,
        )
    )


class TestPinnedEviction:
    def test_mo_overflow_skips_pinned_entry(self):
        # The regression: MEMORY_ONLY overflow used to drop the oldest
        # entry unconditionally — including the input partition of the
        # task currently executing, corrupting onheap_used and forcing a
        # recompute of a block that was literally on the task's stack.
        vm = plain_vm()
        bm = BlockManager(vm, SparkConf(cache_policy=CachePolicy.MO))
        rdd = _RDDStub(1)
        part = cache_partition(vm, bm, rdd, 0)
        frame = vm.roots.open_frame()
        frame.push(part.root)
        try:
            for i in range(1, 6):  # overflows the 60% memory store
                cache_partition(vm, bm, rdd, i)
                accounting_invariant(bm)
            assert bm.drops > 0
            assert (1, 0) in bm.entries  # the pinned entry survived
        finally:
            vm.roots.close_frame(frame)

    def test_mo_all_pinned_stops_evicting(self):
        # With every entry pinned the store must give up (not cache)
        # rather than loop forever looking for a victim.
        vm = plain_vm()
        bm = BlockManager(vm, SparkConf(cache_policy=CachePolicy.MO))
        rdd = _RDDStub(1)
        frame = vm.roots.open_frame()
        try:
            for i in range(4):
                frame.push(cache_partition(vm, bm, rdd, i).root)
            cache_partition(vm, bm, rdd, 4)
            assert (1, 4) not in bm.entries
            assert bm.drops == 0
            assert len(bm.entries) == 4
            accounting_invariant(bm)
        finally:
            vm.roots.close_frame(frame)

    def test_shed_blocks_skips_pinned(self):
        vm = plain_vm(governed=True)
        bm = BlockManager(
            vm, SparkConf(cache_policy=CachePolicy.TERAHEAP)
        )
        rdd = _RDDStub(1)
        part = cache_partition(vm, bm, rdd, 0)
        for i in range(1, 4):
            cache_partition(vm, bm, rdd, i)
        frame = vm.roots.open_frame()
        frame.push(part.root)
        try:
            bm.shed_blocks(gb(64))
            assert (1, 0) in bm.entries
            assert bm.sheds == 3
            accounting_invariant(bm)
        finally:
            vm.roots.close_frame(frame)


class TestSpillEntry:
    def test_spill_and_read_back(self):
        vm = plain_vm()
        bm = BlockManager(vm, SparkConf(cache_policy=CachePolicy.TERAHEAP))
        rdd = _RDDStub(1)
        cache_partition(vm, bm, rdd, 0)
        freed = bm.spill_entry((1, 0))
        assert freed > 0
        entry = bm.entries[(1, 0)]
        assert entry.kind == "blob"
        assert entry.charged == "offheap"
        assert bm.spilled_blocks == 1
        accounting_invariant(bm)
        # First access after the spill pays the unspill penalty once.
        bm.get_or_compute(rdd, 0, lambda _: pytest.fail("recompute"))
        assert bm.unspills == 1
        assert bm.deserializations == 1

    def test_spill_pinned_entry_refused(self):
        vm = plain_vm()
        bm = BlockManager(vm, SparkConf(cache_policy=CachePolicy.TERAHEAP))
        rdd = _RDDStub(1)
        part = cache_partition(vm, bm, rdd, 0)
        frame = vm.roots.open_frame()
        frame.push(part.root)
        try:
            assert bm.spill_entry((1, 0)) == 0
            assert bm.entries[(1, 0)].kind == "heap"
            assert bm.spilled_blocks == 0
        finally:
            vm.roots.close_frame(frame)

    def test_spill_with_open_circuit_stays_on_heap(self):
        vm = plain_vm(governed=True)
        bm = BlockManager(vm, SparkConf(cache_policy=CachePolicy.TERAHEAP))
        rdd = _RDDStub(1)
        cache_partition(vm, bm, rdd, 0)
        trip_circuit(vm)
        bm.spill_entry((1, 0))
        entry = bm.entries[(1, 0)]
        assert entry.kind == "blob"
        assert entry.charged == "h1"
        assert entry.heap_blob is not None
        accounting_invariant(bm)


# ---------------------------------------------------------------------
# Satellite: generation-namespaced labels across restart
# ---------------------------------------------------------------------
class TestGenerationLabels:
    def test_generation_one_labels_keep_paper_form(self):
        ctx = make_ctx()
        rdd = ctx.range_rdd(64 * KiB, name="src")
        assert rdd.generation == 1
        assert rdd.cache_label == f"rdd-{rdd.rdd_id}"

    def test_rebuilt_registry_cannot_collide_with_stale_labels(self):
        # The regression: a driver that rebuilds its RDD graph after a
        # restart restarts rdd-id numbering, so the new graph's labels
        # used to collide with (and adopt) the dead incarnation's stale
        # H2 blocks.  Labels are now namespaced by registry generation.
        ctx = make_ctx(partitions=2)
        old = ctx.range_rdd(128 * KiB, name="src").persist()
        old.evaluate()
        ctx.vm.major_gc()  # migrate + commit so an image exists
        old_label = old.block_label(0)
        ctx.restart()
        assert ctx.registry_generation == 2
        # A rebuilt driver graph: id numbering starts over.
        ctx._rdd_counter = 0
        rebuilt = ctx.range_rdd(128 * KiB, name="src").persist()
        assert rebuilt.rdd_id == old.rdd_id
        assert rebuilt.generation == 2
        assert rebuilt.cache_label == f"rdd-{rebuilt.rdd_id}~g2"
        assert rebuilt.block_label(0) != old_label

    def test_surviving_rdds_keep_their_labels_across_restart(self):
        # RDD objects that survive in the driver registry were adopted
        # under their original labels; only *newly registered* RDDs move
        # to the new generation.
        ctx = make_ctx(partitions=2)
        old = ctx.range_rdd(128 * KiB, name="src").persist()
        old.evaluate()
        ctx.vm.major_gc()
        label_before = old.cache_label
        ctx.restart()
        assert old.cache_label == label_before
        assert old.generation == 1


# ---------------------------------------------------------------------
# Satellite: shuffle allocation bursts respect VM backpressure
# ---------------------------------------------------------------------
class TestShuffleBackpressure:
    def _fill(self, vm, fraction=0.9):
        hoard = []
        size = 32 * KiB
        while (vm.heap.used() + size) / vm.heap.capacity < fraction:
            hoard.append(vm.roots.add(vm.allocate(size, name="pin")))
        return hoard

    def test_shuffle_stalls_under_emergency(self):
        # The regression: shuffle buffers allocated straight past the
        # governor's emergency backpressure — the one allocation burst
        # at exactly the wrong moment paid no stall and shed nothing.
        vm = plain_vm(heap=gb(2), governed=True)
        trip_circuit(vm)
        self._fill(vm)
        sm = ShuffleManager(vm, SparkConf())
        before = vm.alloc_stalls
        sm.shuffle(64 * KiB)
        assert sm.backpressure_stalls == 1
        assert vm.alloc_stalls > before
        assert vm.clock.total(Bucket.ALLOC_STALL) > 0

    def test_shuffle_no_stall_when_healthy(self):
        vm = plain_vm(heap=gb(2), governed=True)
        sm = ShuffleManager(vm, SparkConf())
        sm.shuffle(64 * KiB)
        assert sm.backpressure_stalls == 0
        assert vm.alloc_stalls == 0
