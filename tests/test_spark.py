"""Mini-Spark: RDDs, block manager policies, shuffle, workloads."""

import pytest

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.clock import Bucket
from repro.devices.nvme import NVMeSSD
from repro.frameworks.spark import (
    CachePolicy,
    SparkConf,
    SparkContext,
)
from repro.frameworks.spark.rdd import make_partitions
from repro.frameworks.spark.workloads import SPARK_WORKLOADS
from repro.heap.object_model import SpaceId
from repro.units import KiB


def make_ctx(policy=CachePolicy.SD, heap_gb=8, th=False, partitions=32):
    thc = (
        TeraHeapConfig(enabled=True, h2_size=gb(64), region_size=64 * KiB)
        if th
        else TeraHeapConfig()
    )
    vm = JavaVM(
        VMConfig(heap_size=gb(heap_gb), teraheap=thc, page_cache_size=gb(4))
    )
    dev = NVMeSSD(vm.clock)
    conf = SparkConf(
        cache_policy=policy, offheap_device=dev, num_partitions=partitions
    )
    return SparkContext(vm, conf)


class TestPartitions:
    def test_make_partitions_even_split(self):
        parts = make_partitions(64 * KiB, 4, chunk_size=8 * KiB)
        assert len(parts) == 4
        assert all(p.num_chunks == 2 for p in parts)
        assert sum(p.size_bytes for p in parts) == 64 * KiB

    def test_partition_at_least_one_chunk(self):
        parts = make_partitions(1024, 4, chunk_size=8 * KiB)
        assert all(p.num_chunks == 1 for p in parts)


class TestRDD:
    def test_ids_unique(self):
        ctx = make_ctx()
        a = ctx.range_rdd(64 * KiB)
        b = ctx.range_rdd(64 * KiB)
        assert a.rdd_id != b.rdd_id

    def test_map_scales_size(self):
        ctx = make_ctx()
        base = ctx.range_rdd(640 * KiB)
        half = base.map(size_factor=0.5)
        assert half.size_bytes == pytest.approx(
            base.size_bytes * 0.5, rel=0.2
        )
        assert half.parent is base

    def test_evaluate_materialises_all_partitions(self):
        ctx = make_ctx()
        rdd = ctx.range_rdd(64 * KiB)
        total = rdd.evaluate()
        assert total >= rdd.size_bytes

    def test_uncached_partitions_are_garbage(self):
        ctx = make_ctx()
        rdd = ctx.range_rdd(64 * KiB)
        rdd.evaluate()
        vm = ctx.vm
        used = vm.heap.used()
        vm.minor_gc()
        assert vm.heap.used() < used

    def test_persist_keeps_partitions(self):
        ctx = make_ctx(policy=CachePolicy.MO)
        rdd = ctx.range_rdd(64 * KiB).persist()
        rdd.evaluate()
        vm = ctx.vm
        vm.minor_gc()
        vm.major_gc()
        entry = ctx.block_manager.entries[(rdd.rdd_id, 0)]
        assert entry.partition.root.space is not SpaceId.FREED

    def test_unpersist_releases(self):
        ctx = make_ctx(policy=CachePolicy.MO)
        rdd = ctx.range_rdd(64 * KiB).persist()
        rdd.evaluate()
        rdd.unpersist()
        assert (rdd.rdd_id, 0) not in ctx.block_manager.entries


class TestBlockManagerSD:
    def test_overflow_serialized_offheap(self):
        ctx = make_ctx(policy=CachePolicy.SD, heap_gb=2)
        rdd = ctx.range_rdd(gb(3)).persist()  # exceeds 50% of 2 GB heap
        rdd.evaluate()
        kinds = {e.kind for e in ctx.block_manager.entries.values()}
        assert "blob" in kinds
        assert ctx.block_manager.offheap_bytes > 0

    def test_offheap_access_deserializes_every_time(self):
        ctx = make_ctx(policy=CachePolicy.SD, heap_gb=2)
        rdd = ctx.range_rdd(gb(3)).persist()
        rdd.evaluate()
        before = ctx.block_manager.deserializations
        rdd.foreach_cached(ops_per_chunk=1)
        assert ctx.block_manager.deserializations > before
        assert ctx.vm.clock.total(Bucket.SD_IO) > 0

    def test_onheap_budget_respected(self):
        ctx = make_ctx(policy=CachePolicy.SD, heap_gb=2)
        rdd = ctx.range_rdd(gb(3)).persist()
        rdd.evaluate()
        assert (
            ctx.block_manager.onheap_used
            <= ctx.block_manager.onheap_budget
        )


class TestBlockManagerMO:
    def test_mo_evicts_and_recomputes(self):
        ctx = make_ctx(policy=CachePolicy.MO, heap_gb=2)
        rdd = ctx.range_rdd(gb(3)).persist()
        rdd.evaluate()
        bm = ctx.block_manager
        assert getattr(bm, "drops", 0) > 0
        # Dropped partitions recompute on access without error.
        rdd.foreach_cached(ops_per_chunk=1)


class TestBlockManagerTeraHeap:
    def test_partitions_tagged_and_moved(self):
        ctx = make_ctx(policy=CachePolicy.TERAHEAP, th=True)
        rdd = ctx.range_rdd(gb(1)).persist()
        rdd.evaluate()
        vm = ctx.vm
        vm.major_gc()
        entry = ctx.block_manager.entries[(rdd.rdd_id, 0)]
        assert entry.partition.root.space is SpaceId.H2
        # Labels are per block (partition), so crash recovery can adopt
        # or quarantine each cached partition independently.
        assert entry.partition.root.label == rdd.block_label(0)

    def test_no_deserialization_under_teraheap(self):
        ctx = make_ctx(policy=CachePolicy.TERAHEAP, th=True)
        rdd = ctx.range_rdd(gb(1)).persist()
        rdd.evaluate()
        ctx.vm.major_gc()
        rdd.foreach_cached(ops_per_chunk=1)
        assert ctx.block_manager.deserializations == 0

    def test_unpersist_allows_region_reclaim(self):
        ctx = make_ctx(policy=CachePolicy.TERAHEAP, th=True)
        rdd = ctx.range_rdd(gb(1)).persist()
        rdd.evaluate()
        vm = ctx.vm
        vm.major_gc()
        rdd.unpersist()
        vm.major_gc()
        assert vm.h2.regions_reclaimed > 0


class TestShuffle:
    def test_shuffle_charges_sd_and_device(self):
        ctx = make_ctx()
        ctx.shuffle(256 * KiB)
        assert ctx.vm.clock.total(Bucket.SD_IO) > 0
        assert ctx.conf.offheap_device.traffic.bytes_written > 0
        assert ctx.shuffle_manager.shuffles == 1

    def test_zero_bytes_noop(self):
        ctx = make_ctx()
        ctx.shuffle(0)
        assert ctx.shuffle_manager.shuffles == 0

    def test_cleaner_gc_fires(self):
        ctx = make_ctx()
        interval = ctx.shuffle_manager.CLEANER_GC_INTERVAL
        for _ in range(interval):
            ctx.shuffle(8 * KiB)
        assert ctx.vm.collector.stats.major_count >= 1


@pytest.mark.parametrize("name", sorted(SPARK_WORKLOADS))
def test_workloads_run_under_teraheap(name):
    ctx = make_ctx(policy=CachePolicy.TERAHEAP, th=True, heap_gb=8)
    SPARK_WORKLOADS[name](ctx, gb(4), scale=0.2)
    assert ctx.vm.elapsed() > 0


def test_teraheap_beats_sd_on_iterative_workload():
    """The headline claim at small scale: same heap, TH faster."""
    totals = {}
    for policy, th in [(CachePolicy.SD, False), (CachePolicy.TERAHEAP, True)]:
        ctx = make_ctx(policy=policy, th=th, heap_gb=6)
        SPARK_WORKLOADS["LR"](ctx, gb(7), scale=0.3)
        totals[policy] = ctx.vm.elapsed()
    assert totals[CachePolicy.TERAHEAP] < totals[CachePolicy.SD]
