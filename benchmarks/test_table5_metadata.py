"""Table 5: H2 metadata size in DRAM per TB vs region size."""

from conftest import run_once
from repro.experiments import table5


def test_table5_metadata_per_tb(benchmark):
    results = run_once(benchmark, table5.run)
    print("\n" + table5.format_results(results))
    benchmark.extra_info["metadata_mb_per_tb"] = {
        str(k): round(v, 2) for k, v in results.items()
    }
    # Paper row check: 1 MB regions -> 417 MB/TB, 256 MB -> ~2 MB/TB.
    assert round(results[1]) == 417
    assert results[256] <= 2.0
