"""Figure 6: performance under fixed DRAM (all 10 Spark + 5 Giraph
workloads, every DRAM point, OOM bars included)."""

from conftest import BENCH_SCALE, run_once
from repro.experiments import fig06


def test_fig06_spark(benchmark):
    results = run_once(benchmark, fig06.run_spark, scale=BENCH_SCALE)
    print("\n" + fig06.format_results(results))
    improvements = {}
    for name, rows in results.items():
        # Equal-DRAM comparison, the paper's claim: for every DRAM point
        # both systems can run, TeraHeap is faster.
        sd = {
            r.dram_gb: r.total
            for r in rows
            if r.system == "spark-sd" and not r.oom
        }
        th = {
            r.dram_gb: r.total
            for r in rows
            if r.system == "teraheap" and not r.oom
        }
        for dram in sorted(set(sd) & set(th)):
            improvements[f"{name}@{dram:g}"] = round(
                1 - th[dram] / sd[dram], 3
            )
    benchmark.extra_info["th_improvement_vs_sd"] = improvements
    print(f"\nTeraHeap improvement vs Spark-SD (same DRAM): {improvements}")
    # Paper shape: TH beats SD at equal DRAM (18-73%).
    assert improvements
    assert all(v > 0 for v in improvements.values())
    # OOM bars exist at the smallest DRAM points (Figure 6's missing bars).
    ooms = [
        r.label for rows in results.values() for r in rows if r.oom
    ]
    print(f"OOM bars: {ooms}")
    assert ooms


def test_fig06_giraph(benchmark):
    results = run_once(benchmark, fig06.run_giraph)
    print("\n" + fig06.format_results(results))
    improvements = {}
    for name, rows in results.items():
        ooc = [r.total for r in rows if r.system == "giraph-ooc" and not r.oom]
        th = [r.total for r in rows if r.system == "giraph-th" and not r.oom]
        if ooc and th:
            improvements[name] = round(1 - min(th) / min(ooc), 3)
    benchmark.extra_info["th_improvement_vs_ooc"] = improvements
    print(f"\nTeraHeap improvement vs Giraph-OOC: {improvements}")
    assert improvements
    assert all(v > 0 for v in improvements.values())
