"""Figure 12: the NVM server — Spark-SD, Spark-MO and Panthera vs TeraHeap.

Paper: TH beats SD(App Direct) by up to 79% (avg 56%), MO(Memory mode) by
up to 86% (avg 48%), and Panthera by 7-69%.
"""

from conftest import BENCH_SCALE, run_once
from repro.experiments import fig12


def _gains(pairs):
    return {
        name: round(1 - th.total / base.total, 3)
        for name, (base, th) in pairs.items()
        if not base.oom and not th.oom and base.total
    }


def test_fig12a_sd_vs_th(benchmark):
    pairs = run_once(
        benchmark, fig12.run_panel, "spark-sd", scale=BENCH_SCALE
    )
    print("\n" + fig12.format_pairs(pairs))
    gains = _gains(pairs)
    benchmark.extra_info["gains"] = gains
    assert gains and all(v > 0 for v in gains.values())


def test_fig12b_mo_vs_th(benchmark):
    pairs = run_once(
        benchmark, fig12.run_panel, "spark-mo", scale=BENCH_SCALE
    )
    print("\n" + fig12.format_pairs(pairs))
    gains = _gains(pairs)
    benchmark.extra_info["gains"] = gains
    # TH wins on average across the suite (paper: avg 48%).
    assert sum(gains.values()) / len(gains) > 0


def test_fig12c_panthera_vs_th(benchmark):
    pairs = run_once(
        benchmark, fig12.run_panel, "panthera", scale=BENCH_SCALE
    )
    print("\n" + fig12.format_pairs(pairs))
    gains = _gains(pairs)
    benchmark.extra_info["gains"] = gains
    assert gains and all(v > 0 for v in gains.values())
