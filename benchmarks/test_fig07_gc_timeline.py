"""Figure 7: GC timeline and old-gen occupancy, Spark PR (SD vs TH).

Paper: Spark-SD runs 171 major GCs averaging 3.7 s, each reclaiming ~10%
of the old generation; TeraHeap runs 13 majors averaging 16 s (>70% of it
compaction I/O) and cuts total minor GC time by 38%.
"""

from conftest import BENCH_SCALE, run_once
from repro.experiments import fig07


def test_fig07_gc_timeline(benchmark):
    timelines = run_once(benchmark, fig07.run, scale=BENCH_SCALE)
    print("\n" + fig07.format_results(timelines))
    by_system = {t.system: t for t in timelines}
    sd, th = by_system["spark-sd"], by_system["teraheap"]
    benchmark.extra_info["sd_majors"] = len(sd.major_cycles)
    benchmark.extra_info["th_majors"] = len(th.major_cycles)
    benchmark.extra_info["sd_avg_major"] = round(sd.mean_major, 2)
    benchmark.extra_info["th_avg_major"] = round(th.mean_major, 2)
    # Shape: SD majors are frequent and cheap; TH majors rare and I/O-bound.
    assert len(sd.major_cycles) > len(th.major_cycles)
    assert th.mean_major > sd.mean_major
    assert th.total_minor < sd.total_minor  # fewer cards to scan
    # Occupancy series exists for plotting.
    assert sd.occupancy_series() and th.occupancy_series()
