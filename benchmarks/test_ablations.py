"""Ablations of the design choices DESIGN.md calls out (Section 3).

- dependency lists vs union-find region groups (Section 3.3): direction
  matters — groups reclaim fewer regions;
- four-state vs two-state H2 card table (Section 3.4): without the
  oldGen state, minor GC rescans segments that only reference the old
  generation;
- stripe-aligned objects vs sticky boundary cards (Section 3.4).
"""

from conftest import run_once
from repro.experiments.configs import GIRAPH_WORKLOADS_TABLE4
from repro.experiments.runner import run_giraph_workload


def _run_pr(teraheap_overrides=None):
    cfg = GIRAPH_WORKLOADS_TABLE4["PR"]
    return run_giraph_workload(
        "PR",
        "giraph-th",
        cfg.drams[-1],
        cfg,
        teraheap_overrides=teraheap_overrides,
    )


def test_ablation_region_policy(benchmark):
    def run_both():
        out = {}
        for policy in ("deps", "groups"):
            result, vm, _ = _run_pr({"region_policy": policy})
            out[policy] = vm.h2.regions_reclaimed
        return out

    reclaimed = run_once(benchmark, run_both)
    print(f"\nregions reclaimed: deps={reclaimed['deps']} "
          f"groups={reclaimed['groups']}")
    benchmark.extra_info["regions_reclaimed"] = reclaimed
    # Tracking direction reclaims at least as many regions (Section 3.3).
    assert reclaimed["deps"] >= reclaimed["groups"]


def test_ablation_four_state_cards(benchmark):
    def run_both():
        out = {}
        for four_state in (True, False):
            result, vm, _ = _run_pr({"four_state_cards": four_state})
            out[four_state] = vm.clock.sub_total("h2_minor_scan")
        return out

    scans = run_once(benchmark, run_both)
    print(
        f"\nH2 minor-scan time: four-state={scans[True]:.3f}s "
        f"two-state={scans[False]:.3f}s"
    )
    benchmark.extra_info["h2_minor_scan"] = {
        "four_state": scans[True],
        "two_state": scans[False],
    }
    # Skipping oldGen segments in minor GC never costs more.
    assert scans[True] <= scans[False] * 1.01


def test_ablation_size_aware_placement(benchmark):
    """§7.3 future work: segregating large objects lets sparse regions of
    dead arrays die independently (BFS is the paper's poster child)."""

    def run_both():
        out = {}
        cfg = GIRAPH_WORKLOADS_TABLE4["BFS"]
        for size_aware in (False, True):
            result, vm, _ = run_giraph_workload(
                "BFS",
                "giraph-th",
                cfg.drams[-1],
                cfg,
                teraheap_overrides={"size_aware_placement": size_aware},
            )
            out[size_aware] = vm.h2.regions_reclaimed
        return out

    reclaimed = run_once(benchmark, run_both)
    print(
        f"\nBFS regions reclaimed: default={reclaimed[False]} "
        f"size-aware={reclaimed[True]}"
    )
    benchmark.extra_info["regions_reclaimed"] = {
        "default": reclaimed[False],
        "size_aware": reclaimed[True],
    }
    assert reclaimed[True] >= reclaimed[False]


def test_ablation_adaptive_thresholds(benchmark):
    """§7.2 future work: adapting the thresholds to observed pressure
    needs no per-workload hand-tuning and stays within a few percent of
    the hand-tuned static configuration."""

    def run_both():
        out = {}
        for adaptive in (False, True):
            result, _, _ = _run_pr({"adaptive_thresholds": adaptive})
            out[adaptive] = result.total
        return out

    totals = run_once(benchmark, run_both)
    print(
        f"\nPR total: static={totals[False]:.1f}s "
        f"adaptive={totals[True]:.1f}s"
    )
    benchmark.extra_info["totals"] = {
        "static": totals[False],
        "adaptive": totals[True],
    }
    assert totals[True] <= totals[False] * 1.10


def test_ablation_stripe_alignment(benchmark):
    def run_both():
        out = {}
        for aligned in (True, False):
            result, vm, _ = _run_pr({"stripe_aligned": aligned})
            out[aligned] = vm.clock.sub_total("h2_minor_scan")
        return out

    scans = run_once(benchmark, run_both)
    print(
        f"\nH2 minor-scan time: aligned={scans[True]:.3f}s "
        f"sticky-boundary={scans[False]:.3f}s"
    )
    benchmark.extra_info["h2_minor_scan"] = {
        "aligned": scans[True],
        "unaligned": scans[False],
    }
    assert scans[True] <= scans[False] * 1.01
