"""Section 4: post-write-barrier overhead (DaCapo stand-in).

Paper: the TeraHeap reference range check adds <=3% on average across
DaCapo, and exactly zero when EnableTeraHeap is off.
"""

from conftest import run_once
from repro.experiments import barrier


def test_barrier_overhead(benchmark):
    result = run_once(benchmark, barrier.run, operations=10000)
    print("\n" + barrier.format_result(result))
    benchmark.extra_info["per_benchmark"] = result.per_benchmark
    benchmark.extra_info["mean_overhead"] = result.mean_overhead
    # Paper: <=3% on average across the suite; zero when disabled is
    # structural (the check is not emitted).
    assert result.mean_overhead <= 0.03
    assert result.max_overhead <= 0.05
