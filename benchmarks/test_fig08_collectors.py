"""Figure 8: TeraHeap vs PS (jdk11) vs G1 (jdk17) on the Spark suite.

Paper shape: G1 matches or beats PS by cutting GC but keeps paying
caching S/D; TeraHeap beats both (21-48% over G1); G1 OOMs on SVM, BC and
RL from humongous-object fragmentation.
"""

from conftest import BENCH_SCALE, run_once
from repro.experiments import fig08


def test_fig08_collectors(benchmark):
    results = run_once(benchmark, fig08.run, scale=BENCH_SCALE)
    print("\n" + fig08.format_results(results))
    th_vs_g1 = {}
    g1_ooms = []
    for name, rows in results.items():
        by_system = {r.system: r for r in rows}
        if by_system["spark-g1"].oom:
            g1_ooms.append(name)
        elif not by_system["teraheap"].oom:
            th_vs_g1[name] = round(
                1 - by_system["teraheap"].total / by_system["spark-g1"].total,
                3,
            )
        # TeraHeap beats PS wherever both run.  TR is the known deviation
        # (EXPERIMENTS.md): its cached data fits on-heap, so against the
        # parallel-old jdk11 PS the fencing win and the transfer cost
        # roughly cancel at simulation scale.
        ps = by_system["spark-sd11"]
        th = by_system["teraheap"]
        if not ps.oom and not th.oom:
            slack = 1.10 if name == "TR" else 1.0
            assert th.total < ps.total * slack, name
    print(f"\nG1 OOM workloads: {g1_ooms}")
    print(f"TeraHeap improvement vs G1: {th_vs_g1}")
    benchmark.extra_info["g1_ooms"] = g1_ooms
    benchmark.extra_info["th_vs_g1"] = th_vs_g1
    # The paper's G1 fragmentation victims.
    assert set(g1_ooms) >= {"SVM", "BC"}
    # TH beats G1 (21-48% in the paper); TR is the documented deviation.
    assert all(v > 0 for n, v in th_vs_g1.items() if n != "TR")
    if "TR" in th_vs_g1:
        assert th_vs_g1["TR"] > -0.15
