"""Figure 10: CDFs of live objects / live space per H2 region (16 vs 256 MB).

Paper shape: PR/CDLP/WCC reclaim most of their allocated regions (dead
message stores die wholesale); BFS/SSSP reclaim far fewer (long-lived
edges pin regions); unused region space stays small.
"""

from conftest import run_once
from repro.experiments import fig10


def test_fig10_region_liveness_cdfs(benchmark):
    results = run_once(benchmark, fig10.run)
    print("\n" + fig10.format_results(results))
    reclaimed = {}
    for name, series in results.items():
        for cdf in series:
            reclaimed[(name, cdf.region_size_mb)] = round(
                cdf.reclaimed_fraction, 3
            )
            # CDF series are well-formed for plotting.
            los = cdf.live_object_fractions()
            lss = cdf.live_space_fractions()
            assert los == sorted(los) and all(0 <= f <= 1 for f in los)
            assert lss == sorted(lss) and all(0 <= f <= 1 for f in lss)
    benchmark.extra_info["reclaimed_fraction"] = {
        f"{k[0]}@{k[1]}MB": v for k, v in reclaimed.items()
    }
    print(f"\nreclaimed fraction per (workload, region size): {reclaimed}")
    # Message-store workloads reclaim far more than traversal workloads.
    assert reclaimed[("PR", 16)] > reclaimed[("BFS", 16)]
    assert reclaimed[("CDLP", 16)] > reclaimed[("SSSP", 16)]
