"""Figure 13: scaling with mutator threads (a) and dataset size (b).

Paper: TeraHeap keeps improving with 16 threads (up to 23%); Spark-SD
stalls because GC grows (~44% for LR); TeraHeap's advantage holds or
grows with dataset size (up to 70%).
"""

from conftest import run_once
from repro.experiments import fig13


def test_fig13a_thread_scaling(benchmark):
    results = run_once(benchmark, fig13.run_thread_scaling, scale=0.3)
    print("\n" + fig13.format_thread_scaling(results))
    summary = {}
    for workload, per_system in results.items():
        for system, per_threads in per_system.items():
            r8, r16 = per_threads.get(8), per_threads.get(16)
            if r8 and r16 and not (r8.oom or r16.oom):
                summary[f"{workload}/{system}"] = round(
                    r16.total / r8.total, 3
                )
    benchmark.extra_info["t16_over_t8"] = summary
    print(f"\n16-thread time normalised to 8 threads: {summary}")
    # TeraHeap scales; the baselines stall or regress.
    for workload, base in [("CC", "spark-sd"), ("LR", "spark-sd"),
                           ("CDLP", "giraph-ooc")]:
        th = "teraheap" if base == "spark-sd" else "giraph-th"
        assert summary[f"{workload}/{th}"] < summary[f"{workload}/{base}"]


def test_fig13b_dataset_scaling(benchmark):
    results = run_once(benchmark, fig13.run_dataset_scaling, scale=0.3)
    gains = {}
    for workload, per_system in results.items():
        systems = list(per_system)
        base_sys = [s for s in systems if "teraheap" not in s and "th" not in s][0]
        th_sys = [s for s in systems if s not in (base_sys,)][0]
        for ds in per_system[base_sys]:
            base = per_system[base_sys][ds]
            th = per_system[th_sys][ds]
            if not (base.oom or th.oom):
                gains[f"{workload}@{ds}GB"] = round(
                    1 - th.total / base.total, 3
                )
    benchmark.extra_info["gains"] = gains
    print(f"\nTeraHeap improvement by dataset size: {gains}")
    # TeraHeap is robust across dataset sizes (paper: similar or higher
    # improvements on the larger datasets).
    assert gains and all(v > -0.1 for v in gains.values())
