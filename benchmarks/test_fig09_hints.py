"""Figure 9: transfer hint (a) and low-threshold (b) ablations (Giraph).

Paper: the hint improves TeraHeap 29-55% (objects move once immutable,
avoiding device read-modify-writes); the low threshold improves the
pressure path by up to 44%.
"""

from conftest import run_once
from repro.experiments import fig09


def test_fig09a_transfer_hint(benchmark):
    pairs = run_once(benchmark, fig09.run_hint_ablation)
    print("\n" + fig09.format_pairs(pairs))
    gains = {
        name: round(1 - hint.total / nohint.total, 3)
        for name, (nohint, hint) in pairs.items()
        if nohint.total
    }
    benchmark.extra_info["hint_gain"] = gains
    print(f"hint improvement: {gains}")
    # The hint wins clearly on the message-heavy workloads and is at
    # worst noise-level elsewhere (the object-granular transfer budget
    # already shields the newest objects even without hints).
    assert all(g >= -0.10 for g in gains.values())
    assert max(gains.values()) > 0.05


def test_fig09b_low_threshold(benchmark):
    pairs = run_once(benchmark, fig09.run_low_threshold_ablation)
    print("\n" + fig09.format_pairs(pairs))
    gains = {
        name: round(1 - low.total / nolow.total, 3)
        for name, (nolow, low) in pairs.items()
        if nolow.total
    }
    benchmark.extra_info["low_threshold_gain"] = gains
    print(f"low-threshold improvement: {gains}")
    assert all(g >= -0.05 for g in gains.values())
