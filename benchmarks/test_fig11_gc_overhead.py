"""Figure 11: (a) H2 minor-GC time vs card segment size; (b) major-GC
phase breakdown, Giraph-OOC vs TeraHeap.

Paper: growing card segments from 512 B to 16 KB cuts H2 minor-GC time by
64% on average; TeraHeap improves every major phase (up to 75%) while its
compaction phase carries the transfer I/O (37-44% of TH major GC).
"""

from conftest import run_once
from repro.experiments import fig11


def test_fig11a_card_segment_sweep(benchmark):
    results = run_once(
        benchmark, fig11.run_card_segment_sweep, workloads=["PR", "CDLP", "WCC"]
    )
    print("\n" + fig11.format_card_sweep(results))
    normalized = {}
    for name, per_size in results.items():
        base = per_size[512]
        normalized[name] = {
            str(seg): round(v / base, 3) if base else None
            for seg, v in sorted(per_size.items())
        }
        # Larger segments shrink the card table and the scan time.
        assert per_size[16384] < per_size[512]
    benchmark.extra_info["normalized_minor_h2"] = normalized


def test_fig11b_major_phase_breakdown(benchmark):
    results = run_once(benchmark, fig11.run_major_phase_breakdown)
    print("\n" + fig11.format_phases(results))
    summary = {}
    wins = 0
    total_ooc = total_th = 0.0
    for name, per_system in results.items():
        ooc = sum(per_system["giraph-ooc"].values())
        th = sum(per_system["giraph-th"].values())
        summary[name] = round(1 - th / ooc, 3) if ooc else None
        total_ooc += ooc
        total_th += th
        if th < ooc:
            wins += 1
        # Compaction is a large share of TH majors (device I/O).
        th_phases = per_system["giraph-th"]
        assert th_phases.get("compact", 0) > 0.2 * th
    benchmark.extra_info["major_gc_improvement"] = summary
    print(f"\nmajor-GC improvement vs OOC: {summary}")
    # TeraHeap improves major GC across the suite (paper: up to 75%);
    # allow one frontier workload (tiny message stores, so transfer I/O
    # dominates) to be the exception.
    assert wins >= len(results) - 1
    assert total_th < total_ooc
