"""Benchmark harness configuration.

Every paper table/figure has one benchmark that regenerates its rows.
Experiments are deterministic simulations, so each runs exactly once
(``pedantic(rounds=1)``); the regenerated series is printed and attached
to ``benchmark.extra_info`` for machine consumption.

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

#: iteration-count scale for workload runs; the shape of every result is
#: preserved at reduced scale while keeping the full sweep tractable
BENCH_SCALE = 0.4


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
